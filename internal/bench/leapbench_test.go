package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func leapFixture() LeapBenchReport {
	return LeapBenchReport{
		Schema: LeapBenchSchema,
		Smoke:  true,
		Seed:   1,
		Entries: []LeapBenchEntry{
			{Protocol: "two-choices", N: 1_000_000_000, Trials: 2, Converged: 2,
				MeanTicks: 2.3e10, Regimes: "ode>leap>exact", SwitchTicks: []int64{0, 2e10, 2.2e10}},
			{Protocol: "usd", N: 1_000_000_000, Trials: 2, Converged: 2,
				MeanTicks: 3.2e10, Regimes: "ode>leap>ode>leap>exact", SwitchTicks: []int64{0, 1e10, 1.2e10, 2.8e10, 3.1e10}},
		},
		Calibrations: []LeapCalibration{
			{Protocol: "two-choices", N: 10_000_000, Trials: 12, ExactMeanTime: 19.2, LeapMeanTime: 19.5, RelTimeErr: 0.016},
		},
	}
}

func TestCompareLeapClean(t *testing.T) {
	base := leapFixture()
	cur := leapFixture()
	// Modest deterministic-drift within the band and calibration noise
	// under the ceiling must not flag.
	cur.Entries[0].MeanTicks *= 1.2
	cur.Entries[0].SwitchTicks[1] = 21e9
	cur.Calibrations[0].RelTimeErr = 0.05
	if regs := CompareLeap(cur, base, 0.5); len(regs) != 0 {
		t.Fatalf("clean comparison flagged: %v", regs)
	}
}

func TestCompareLeapRegressions(t *testing.T) {
	base := leapFixture()

	missing := leapFixture()
	missing.Entries = missing.Entries[:1]

	lostConvergence := leapFixture()
	lostConvergence.Entries[0].Converged = 0

	tickDrift := leapFixture()
	tickDrift.Entries[0].MeanTicks *= 3

	regimeChange := leapFixture()
	regimeChange.Entries[1].Regimes = "ode>leap>exact"

	switchDrift := leapFixture()
	switchDrift.Entries[0].SwitchTicks[1] *= 4

	calBlown := leapFixture()
	calBlown.Calibrations[0].RelTimeErr = 0.2

	calMissing := leapFixture()
	calMissing.Calibrations = nil

	wrongGrid := leapFixture()
	wrongGrid.Smoke = false

	cases := map[string]LeapBenchReport{
		"missing-entry":       missing,
		"lost-convergence":    lostConvergence,
		"tick-drift":          tickDrift,
		"regime-trace-change": regimeChange,
		"switch-point-drift":  switchDrift,
		"calibration-error":   calBlown,
		"missing-calibration": calMissing,
		"grid-mismatch":       wrongGrid,
	}
	for name, cur := range cases {
		if regs := CompareLeap(cur, base, 0.5); len(regs) == 0 {
			t.Errorf("%s: no regression flagged", name)
		}
	}
}

func TestLeapBenchRoundTrip(t *testing.T) {
	rep := leapFixture()
	path := filepath.Join(t.TempDir(), "leap.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLeapBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != LeapBenchSchema || len(got.Entries) != 2 || len(got.Calibrations) != 1 {
		t.Fatalf("round trip mangled the report: %+v", got)
	}

	// A schema from another harness must be refused.
	bad := rep
	bad.Schema = ScaleBenchSchema
	f2, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.WriteJSON(f2); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	if _, err := LoadLeapBench(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}

// TestRunLeapBenchTinyGrid exercises the harness end to end on a reduced
// grid via the exported entry point at the smallest affordable size: the
// smoke grid itself is CI-priced but too slow for the unit suite, so this
// only checks the machinery with a stub grid through runLeapCell /
// runLeapCalibration directly.
func TestRunLeapBenchTinyGrid(t *testing.T) {
	entry, err := runLeapCell(leapCell{protocol: "two-choices", n: 200_000, trials: 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Converged != 2 || entry.MeanTicks <= 0 || entry.Regimes == "" {
		t.Fatalf("entry = %+v", entry)
	}
	cal, err := runLeapCalibration(leapCell{protocol: "usd", n: 200_000, trials: 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cal.ExactMeanTime <= 0 || cal.LeapMeanTime <= 0 {
		t.Fatalf("cal = %+v", cal)
	}
}
