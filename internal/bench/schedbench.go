package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"plurality/internal/rng"
	"plurality/internal/sched"
)

// SchedBenchConfig configures the scheduler-engine benchmark that produces
// BENCH_sched.json: for each population size it measures the raw tick
// delivery rate of every engine, in both per-tick (Next) and batched
// (NextBatch) mode.
type SchedBenchConfig struct {
	// Ns are the population sizes to measure. Empty selects {1e4, 1e6},
	// the sizes the acceptance numbers in BENCH_sched.json track.
	Ns []int
	// Ticks is the number of activations delivered per measurement. Zero
	// selects 5e6.
	Ticks int64
	// Seed drives the engines (the measured rates are insensitive to it;
	// it is recorded so the workload is reproducible).
	Seed uint64
}

// SchedBenchEntry is one engine × size × mode measurement.
type SchedBenchEntry struct {
	Engine      string  `json:"engine"`
	N           int     `json:"n"`
	Mode        string  `json:"mode"` // "next" or "batch"
	Ticks       int64   `json:"ticks"`
	NsPerTick   float64 `json:"nsPerTick"`
	TicksPerSec float64 `json:"ticksPerSec"`
}

// SchedBenchReport is the full benchmark output, serialized to
// BENCH_sched.json.
type SchedBenchReport struct {
	Go        string            `json:"go"`
	GOARCH    string            `json:"goarch"`
	Seed      uint64            `json:"seed"`
	TicksEach int64             `json:"ticksEach"`
	Entries   []SchedBenchEntry `json:"entries"`
	// SpeedupAtN maps "n" to ticksPerSec(poisson batch) /
	// ticksPerSec(heap-poisson batch), the headline O(1)-vs-heap ratio.
	SpeedupAtN map[string]float64 `json:"speedupAtN"`
}

// RunSchedBench measures every scheduler engine and writes a human-readable
// summary to out (if non-nil). The returned report is JSON-serializable.
func RunSchedBench(cfg SchedBenchConfig, out io.Writer) (SchedBenchReport, error) {
	ns := cfg.Ns
	if len(ns) == 0 {
		ns = []int{10_000, 1_000_000}
	}
	ticks := cfg.Ticks
	if ticks <= 0 {
		ticks = 5_000_000
	}

	rep := SchedBenchReport{
		Go:         runtime.Version(),
		GOARCH:     runtime.GOARCH,
		Seed:       cfg.Seed,
		TicksEach:  ticks,
		SpeedupAtN: map[string]float64{},
	}

	engines := []struct {
		name string
		make func(n int) (sched.BatchScheduler, error)
	}{
		{"sequential", func(n int) (sched.BatchScheduler, error) { return sched.NewSequential(n, rng.At(cfg.Seed, 0)) }},
		{"poisson", func(n int) (sched.BatchScheduler, error) { return sched.NewPoisson(n, 1, rng.At(cfg.Seed, 0)) }},
		{"heap-poisson", func(n int) (sched.BatchScheduler, error) { return sched.NewHeapPoisson(n, 1, rng.At(cfg.Seed, 0)) }},
	}

	for _, n := range ns {
		rates := map[string]float64{}
		for _, eng := range engines {
			for _, mode := range []string{"next", "batch"} {
				s, err := eng.make(n)
				if err != nil {
					return rep, err
				}
				elapsed := measure(s, ticks, mode == "batch")
				e := SchedBenchEntry{
					Engine:      eng.name,
					N:           n,
					Mode:        mode,
					Ticks:       ticks,
					NsPerTick:   float64(elapsed.Nanoseconds()) / float64(ticks),
					TicksPerSec: float64(ticks) / elapsed.Seconds(),
				}
				rep.Entries = append(rep.Entries, e)
				if mode == "batch" {
					rates[eng.name] = e.TicksPerSec
				}
				if out != nil {
					fmt.Fprintf(out, "%-13s n=%-9d mode=%-5s  %8.1f ns/tick  %12.0f ticks/s\n",
						eng.name, n, mode, e.NsPerTick, e.TicksPerSec)
				}
			}
		}
		if heap := rates["heap-poisson"]; heap > 0 {
			rep.SpeedupAtN[fmt.Sprintf("%d", n)] = rates["poisson"] / heap
		}
	}
	return rep, nil
}

// WriteJSON serializes the report with stable indentation.
func (r SchedBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// measure delivers ticks activations from s and returns the elapsed wall
// time, keeping a trivial checksum live so the loop cannot be optimized
// away.
func measure(s sched.BatchScheduler, ticks int64, batched bool) time.Duration {
	var sink int64
	start := time.Now()
	if batched {
		buf := make([]sched.Tick, sched.BatchSize)
		for delivered := int64(0); delivered < ticks; delivered += int64(len(buf)) {
			s.NextBatch(buf)
			sink += int64(buf[len(buf)-1].Node)
		}
	} else {
		var sc sched.Scheduler = s // measure through the interface, as RunUntil does
		for i := int64(0); i < ticks; i++ {
			sink += int64(sc.Next().Node)
		}
	}
	elapsed := time.Since(start)
	runtime.KeepAlive(sink)
	return elapsed
}
