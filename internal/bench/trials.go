package bench

import (
	"sort"

	"plurality/internal/par"
)

// measurement is one result of a repeated experiment point.
type measurement struct {
	// value is the primary measurement (rounds, parallel time, …).
	value float64
	// win reports whether the plurality color won the run.
	win bool
	// aux carries an experiment-specific secondary measurement.
	aux float64
}

// runTrials executes f(0) … f(trials-1) concurrently on up to GOMAXPROCS
// workers (via the shared par driver) and returns the results in trial
// order. Each f must derive its randomness from the trial index so the
// outcome is independent of scheduling. The first error wins and cancels
// nothing — remaining trials still finish (they are short) — but the error
// is returned.
func runTrials(trials int, f func(trial int) (measurement, error)) ([]measurement, error) {
	results := make([]measurement, trials)
	err := par.ForEach(0, trials, func(i int) error {
		var e error
		results[i], e = f(i)
		return e
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// medianValue returns the median of the trials' primary measurements.
func medianValue(ts []measurement) float64 {
	vals := make([]float64, len(ts))
	for i, t := range ts {
		vals[i] = t.value
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}

// medianAux returns the median of the trials' secondary measurements.
func medianAux(ts []measurement) float64 {
	vals := make([]float64, len(ts))
	for i, t := range ts {
		vals[i] = t.aux
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}

// countWins returns how many trials the plurality color won.
func countWins(ts []measurement) int {
	wins := 0
	for _, t := range ts {
		if t.win {
			wins++
		}
	}
	return wins
}
