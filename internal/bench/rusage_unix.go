//go:build unix

package bench

import "syscall"

// maxRSSBytes returns the process's peak resident set size in bytes, or 0
// when unavailable. On Linux getrusage reports kilobytes (Darwin reports
// bytes; the factor-1024 overestimate there is harmless for a < 4 GiB
// acceptance bound).
func maxRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return int64(ru.Maxrss) * 1024
}
