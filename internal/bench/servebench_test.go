package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func serveFixture() ServeBenchReport {
	return ServeBenchReport{
		Schema: ServeBenchSchema,
		Smoke:  true,
		Seed:   1,
		Throughput: ServeThroughput{
			Jobs: 24, Workers: 8, Completed: 24, JobsPerSec: 900, Seconds: 0.03,
		},
		Cache: ServeCacheProbe{
			Hit: true, ByteIdentical: true, RefConverged: true, RefTicks: 2_000_000, HitRate: 0.04,
		},
		Backpressure: ServeBackpressure{
			Workers: 1, QueueDepth: 2, Submitted: 10, Accepted: 3, Rejected: 7,
			RetryAfterSet: true, Canceled: 3,
		},
	}
}

func TestCompareServeClean(t *testing.T) {
	base := serveFixture()
	cur := serveFixture()
	// Hardware-bound drift must not flag.
	cur.Throughput.JobsPerSec /= 10
	cur.Throughput.Seconds *= 10
	cur.Throughput.P99Seconds = 3
	// The queue race can shift the accept/reject split; only the
	// identities gate.
	cur.Backpressure.Accepted, cur.Backpressure.Rejected = 4, 6
	cur.Backpressure.Canceled = 4
	if regs := CompareServe(cur, base, 0.05); len(regs) != 0 {
		t.Fatalf("clean comparison flagged: %v", regs)
	}
}

func TestCompareServeRegressions(t *testing.T) {
	base := serveFixture()

	lostJob := serveFixture()
	lostJob.Throughput.Completed--

	noHit := serveFixture()
	noHit.Cache.Hit = false

	notIdentical := serveFixture()
	notIdentical.Cache.ByteIdentical = false

	tickDrift := serveFixture()
	tickDrift.Cache.RefTicks *= 2

	noRejection := serveFixture()
	noRejection.Backpressure.Rejected = 0
	noRejection.Backpressure.Accepted = noRejection.Backpressure.Submitted

	lostSubmission := serveFixture()
	lostSubmission.Backpressure.Accepted-- // accepted+rejected != submitted

	noRetryAfter := serveFixture()
	noRetryAfter.Backpressure.RetryAfterSet = false

	leakedJob := serveFixture()
	leakedJob.Backpressure.Canceled--

	wrongLoad := serveFixture()
	wrongLoad.Smoke = false

	cases := map[string]ServeBenchReport{
		"lost-job":        lostJob,
		"no-cache-hit":    noHit,
		"not-identical":   notIdentical,
		"tick-drift":      tickDrift,
		"no-rejection":    noRejection,
		"lost-submission": lostSubmission,
		"no-retry-after":  noRetryAfter,
		"leaked-job":      leakedJob,
		"load-mismatch":   wrongLoad,
	}
	for name, cur := range cases {
		if regs := CompareServe(cur, base, 0.05); len(regs) == 0 {
			t.Errorf("%s: no regression flagged", name)
		}
	}
}

func TestServeBenchRoundTrip(t *testing.T) {
	rep := serveFixture()
	path := filepath.Join(t.TempDir(), "serve.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadServeBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cache.RefTicks != rep.Cache.RefTicks || got.Backpressure.Rejected != 7 {
		t.Fatalf("round trip mangled the report: %+v", got)
	}

	bad := rep
	bad.Schema = "plurality-scale/v1"
	f2, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.WriteJSON(f2); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	if _, err := LoadServeBench(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}

// TestRunServeBenchSmoke drives the real daemon through the smoke load and
// checks every built-in invariant.
func TestRunServeBenchSmoke(t *testing.T) {
	rep, err := RunServeBench(ServeBenchConfig{Smoke: true, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fails := rep.Check(); len(fails) != 0 {
		t.Fatalf("invariants failed: %v", fails)
	}
	if rep.Cache.RefTicks == 0 {
		t.Fatal("reference run recorded no ticks")
	}
	// Determinism: the same config reproduces the same reference ticks.
	rep2, err := RunServeBench(ServeBenchConfig{Smoke: true, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Cache.RefTicks != rep.Cache.RefTicks {
		t.Fatalf("reference ticks not deterministic: %d vs %d", rep.Cache.RefTicks, rep2.Cache.RefTicks)
	}
	if regs := CompareServe(rep2, rep, 0.05); len(regs) != 0 {
		t.Fatalf("self-comparison flagged: %v", regs)
	}
}
