package bench

import (
	"errors"
	"fmt"

	"plurality/internal/core"
	"plurality/internal/population"
	"plurality/internal/trace"
)

// Ablations returns the ablation experiments for the protocol constants the
// brief announcement leaves unspecified (DESIGN.md §6): the block length ∆,
// the Sync Gadget sample count L, and the endgame budget. They justify the
// calibrated defaults in internal/core.
func Ablations() []Experiment {
	return []Experiment{
		{
			ID:    "ab1",
			Title: "Ablation: block length Delta",
			Claim: "Delta must dominate gadget-estimator noise + within-phase drift; larger Delta only wastes time linearly",
			Run:   runAB1,
		},
		{
			ID:    "ab2",
			Title: "Ablation: Sync Gadget sample count",
			Claim: "the jump target is a median of L samples; accuracy improves ~1/sqrt(L) and saturates near L = Delta",
			Run:   runAB2,
		},
		{
			ID:    "ab3",
			Title: "Ablation: endgame budget",
			Claim: "part 2 needs Theta(log n) ticks per node; shorter budgets halt nodes before stragglers convert",
			Run:   runAB3,
		},
	}
}

// runAB1 sweeps the block length ∆ around its default and reports both the
// synchronization quality and the consensus time: too small and the phase
// structure collapses, too large and the (phase count × 7∆) schedule just
// burns time.
func runAB1(cfg Config) error {
	var (
		n      = pick(cfg, 4000, 8000)
		k      = 4
		trials = pick(cfg, 3, 3)
	)
	spec, err := core.Plan(core.Config{}, n)
	if err != nil {
		return err
	}
	counts, err := population.BiasedCounts(n, k, 0.5)
	if err != nil {
		return err
	}
	deltas := []int{spec.Delta / 4, spec.Delta / 2, spec.Delta, 2 * spec.Delta}
	tbl := trace.NewTable(
		fmt.Sprintf("AB1: Delta sweep, n=%d, k=%d (default Delta=%d), %d trials", n, k, spec.Delta, trials),
		"Delta", "converged", "plurality wins", "median consensus time", "max poor fraction")
	for _, delta := range deltas {
		if delta < 2 {
			continue
		}
		delta := delta
		var worstPoor float64
		ts, err := runTrials(trials, func(trial int) (measurement, error) {
			var localWorst float64
			res, runErr := runCore(counts, cfg.Seed+uint64(delta*100+trial), 1e6, func(c *core.Config) {
				c.Delta = delta
				c.ProbeInterval = 10
				c.OnProbe = func(p core.Probe) {
					if p.Active == 0 {
						return
					}
					if f := float64(p.PoorlySynced) / float64(p.Active); f > localWorst {
						localWorst = f
					}
				}
			})
			if runErr != nil && !errors.Is(runErr, core.ErrNoConsensus) {
				return measurement{}, runErr
			}
			if localWorst > worstPoor {
				worstPoor = localWorst
			}
			return measurement{
				value: res.ConsensusTime,
				win:   res.Done && res.Winner == 0,
				aux:   boolTo01(res.Done),
			}, nil
		})
		if err != nil {
			return err
		}
		converged := 0
		for _, m := range ts {
			if m.aux > 0 {
				converged++
			}
		}
		tbl.AddRow(
			fmt.Sprintf("%d", delta),
			fmt.Sprintf("%d/%d", converged, trials),
			fmt.Sprintf("%d/%d", countWins(ts), trials),
			fmt.Sprintf("%.0f", medianValue(ts)),
			fmt.Sprintf("%.3f", worstPoor),
		)
	}
	tbl.Fprint(cfg.Out)
	fmt.Fprintf(cfg.Out, "shape: below the default Delta the poorly-synced fraction explodes and runs fail; above it, consensus time grows ~linearly in Delta\n\n")
	return nil
}

// runAB2 sweeps the Sync Gadget's sample count L at fixed ∆ and reports the
// observed spread: the jump target is a median of L real-time samples, so
// its error shrinks like 1/sqrt(L).
func runAB2(cfg Config) error {
	var (
		n = pick(cfg, 4000, 8000)
		k = 4
	)
	spec, err := core.Plan(core.Config{}, n)
	if err != nil {
		return err
	}
	counts, err := population.BiasedCounts(n, k, 1)
	if err != nil {
		return err
	}
	samples := []int{1, 2, 4, 8, spec.GadgetSamples}
	tbl := trace.NewTable(
		fmt.Sprintf("AB2: gadget sample sweep, n=%d, Delta=%d (default L=%d)", n, spec.Delta, spec.GadgetSamples),
		"L", "max spread90", "max poor fraction", "converged", "plurality won")
	for _, l := range samples {
		var (
			worstSpread int64
			worstPoor   float64
		)
		res, err := runCore(counts, cfg.Seed+uint64(l), 1e6, func(c *core.Config) {
			c.GadgetSamples = l
			c.Phases = 10
			c.ProbeInterval = 10
			c.OnProbe = func(p core.Probe) {
				if p.Active == 0 {
					return
				}
				if p.Spread90 > worstSpread {
					worstSpread = p.Spread90
				}
				if f := float64(p.PoorlySynced) / float64(p.Active); f > worstPoor {
					worstPoor = f
				}
			}
		})
		if err != nil && !errors.Is(err, core.ErrNoConsensus) {
			return err
		}
		tbl.AddRow(
			fmt.Sprintf("%d", l),
			fmt.Sprintf("%d", worstSpread),
			fmt.Sprintf("%.3f", worstPoor),
			fmt.Sprintf("%v", res.Done),
			fmt.Sprintf("%v", res.Done && res.Winner == 0),
		)
	}
	tbl.Fprint(cfg.Out)
	fmt.Fprintf(cfg.Out, "shape: spread shrinks as L grows (median error ~ 1/sqrt(L)) and saturates near the default\n\n")
	return nil
}

// runAB3 sweeps the endgame budget from an endgame-only 90/10 start: with
// too few ticks per node the early finishers halt before the stragglers
// have converted, violating §3.2's safety property.
func runAB3(cfg Config) error {
	var (
		n       = pick(cfg, 10000, 20000)
		trials  = pick(cfg, 3, 5)
		factors = []float64{0.5, 1, 2, 4, 6}
	)
	spec, err := core.Plan(core.Config{}, n)
	if err != nil {
		return err
	}
	counts := []int64{int64(n) * 9 / 10, int64(n) - int64(n)*9/10}
	tbl := trace.NewTable(
		fmt.Sprintf("AB3: endgame budget sweep, n=%d, start 90/10, default %d ticks, %d trials", n, spec.EndgameTicks, trials),
		"ticks per node", "consensus reached", "endgame safe", "median margin")
	for _, f := range factors {
		ticks := int(f / core.DefaultEndgameFactor * float64(spec.EndgameTicks))
		if ticks < 1 {
			ticks = 1
		}
		ts, err := runTrials(trials, func(trial int) (measurement, error) {
			res, runErr := runCore(counts, cfg.Seed+uint64(ticks*10+trial), 1e6, func(c *core.Config) {
				c.SkipPart1 = true
				c.RunToHalt = true
				c.EndgameTicks = ticks
			})
			if runErr != nil && !errors.Is(runErr, core.ErrNoConsensus) {
				return measurement{}, runErr
			}
			margin := res.FirstHaltTime - res.ConsensusTime
			if !res.Done {
				margin = 0
			}
			return measurement{
				value: margin,
				win:   res.EndgameSafe,
				aux:   boolTo01(res.Done),
			}, nil
		})
		if err != nil {
			return err
		}
		converged := 0
		for _, m := range ts {
			if m.aux > 0 {
				converged++
			}
		}
		tbl.AddRow(
			fmt.Sprintf("%d (%.1f ln n)", ticks, f),
			fmt.Sprintf("%d/%d", converged, trials),
			fmt.Sprintf("%d/%d", countWins(ts), trials),
			fmt.Sprintf("%.1f", medianValue(ts)),
		)
	}
	tbl.Fprint(cfg.Out)
	fmt.Fprintf(cfg.Out, "shape: budgets below ~2 ln n halt nodes before consensus (unsafe); the default leaves a comfortable margin\n\n")
	return nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
