package graph

import (
	"fmt"
	"math"
	"sort"

	"plurality/internal/rng"
)

// Class describes one degree class of a Classed topology: Count nodes, each
// with Degree half-edges.
type Class struct {
	Degree int
	Count  int64
}

// Classed is the capability interface of topologies whose dynamics are
// exchangeable within degree classes, so engines can collapse a run to a
// (degree-class × color) count matrix instead of n nodes. The contract is
// annealed sampling: Sample(u) must draw a fresh degree-biased neighbor on
// every call (any node v ≠ u with probability proportional to v's degree),
// never a fixed edge — quenched topologies like Cycle, Torus and Adjacency
// deliberately do not implement it. Nodes of class i occupy the contiguous
// index range [Σ_{j<i} Count_j, Σ_{j<=i} Count_j).
type Classed interface {
	Graph
	// Classes returns the degree-class partition in node-index order. The
	// returned slice is shared engine state; callers must not mutate it.
	Classes() []Class
}

// Annealed is the annealed (mean-field) configuration model over a degree
// sequence: Sample(u) follows a uniformly random half-edge of u to a
// freshly drawn partner, i.e. returns node v ≠ u with probability
// deg(v) / (Σ_w deg(w) − deg(u)). This is the standard degree-class
// mean-field treatment of the quenched topologies (the
// Fountoulakis–Panagiotou-style analysis of majority dynamics on random
// graphs): exact for dynamics on the configuration model with fresh
// pairings per activation, and the expander approximation of a fixed
// random regular graph that the topology-equivalence sweep gates. Because
// every activation re-pairs, nodes are exchangeable within a degree class,
// which is the symmetry the lumped engine exploits via Classes.
//
// A single class of degree d (the annealed form of cycles d=2, tori d=4
// and random d-regular graphs) degenerates to uniform sampling over the
// n−1 other nodes — the clique law — independently of d.
type Annealed struct {
	classes []Class
	bounds  []int64 // cumulative node counts; class i spans [bounds[i], bounds[i+1])
	n       int64
	totalW  int64 // Σ degree·count, the half-edge mass
}

// NewAnnealed returns the annealed configuration model over the given
// degree classes (each Degree >= 1, Count >= 1, at least 2 nodes total).
func NewAnnealed(classes []Class) (*Annealed, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("graph: annealed graph needs at least one degree class")
	}
	var n, w int64
	for i, c := range classes {
		if c.Degree < 1 {
			return nil, fmt.Errorf("graph: annealed class %d has degree %d, want >= 1", i, c.Degree)
		}
		if c.Count < 1 {
			return nil, fmt.Errorf("graph: annealed class %d has count %d, want >= 1", i, c.Count)
		}
		if c.Count > math.MaxInt64-n || int64(c.Degree)*c.Count > math.MaxInt64-w {
			return nil, fmt.Errorf("graph: annealed classes overflow the node or half-edge totals")
		}
		n += c.Count
		w += int64(c.Degree) * c.Count
	}
	if n < 2 {
		return nil, fmt.Errorf("graph: annealed graph needs n >= 2, got %d", n)
	}
	if n > math.MaxInt {
		return nil, fmt.Errorf("graph: annealed graph with %d nodes overflows int", n)
	}
	cls := make([]Class, len(classes))
	copy(cls, classes)
	bounds := make([]int64, len(cls)+1)
	for i, c := range cls {
		bounds[i+1] = bounds[i] + c.Count
	}
	return &Annealed{classes: cls, bounds: bounds, n: n, totalW: w}, nil
}

// NewAnnealedRegular returns the single-class annealed d-regular model on n
// nodes: the lumped form of every vertex-transitive d-regular topology.
func NewAnnealedRegular(n, d int) (*Annealed, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: annealed regular graph needs n >= 2, got %d", n)
	}
	if d < 1 {
		return nil, fmt.Errorf("graph: annealed regular graph needs d >= 1, got %d", d)
	}
	return NewAnnealed([]Class{{Degree: d, Count: int64(n)}})
}

// AnnealedOf lumps g's degree sequence into its annealed configuration
// model: one class per distinct degree, in ascending degree order. Node
// identities are relabeled so classes occupy contiguous index ranges;
// under annealed sampling nodes are exchangeable within a class, so the
// relabeling is distribution-preserving for any initial condition assigned
// by class. Note the annealed model always samples neighbors other than
// the activated node, so lumping a Complete graph with WithSelf set drops
// the self-sample.
func AnnealedOf(g Graph) (*Annealed, error) {
	if a, ok := g.(*Annealed); ok {
		return a, nil
	}
	n := g.N()
	hist := make(map[int]int64)
	for u := 0; u < n; u++ {
		hist[g.Degree(u)]++
	}
	degs := make([]int, 0, len(hist))
	for d := range hist {
		degs = append(degs, d)
	}
	sort.Ints(degs)
	classes := make([]Class, len(degs))
	for i, d := range degs {
		classes[i] = Class{Degree: d, Count: hist[d]}
	}
	return NewAnnealed(classes)
}

// N implements Graph.
func (g *Annealed) N() int { return int(g.n) }

// Classes implements Classed.
func (g *Annealed) Classes() []Class { return g.classes }

// classOf returns the index of the class whose range contains node u.
func (g *Annealed) classOf(u int) int {
	return sort.Search(len(g.classes), func(i int) bool { return g.bounds[i+1] > int64(u) })
}

// Degree implements Graph.
func (g *Annealed) Degree(u int) int { return g.classes[g.classOf(u)].Degree }

// Sample implements Graph: node v ≠ u with probability
// deg(v) / (totalW − deg(u)), drawn by walking the per-class half-edge
// masses with u's own mass deducted from its class.
func (g *Annealed) Sample(r *rng.RNG, u int) int {
	a := g.classOf(u)
	du := int64(g.classes[a].Degree)
	x := int64(r.Uint64n(uint64(g.totalW - du)))
	for c := range g.classes {
		cl := &g.classes[c]
		mass := int64(cl.Degree) * cl.Count
		if c == a {
			mass -= du
		}
		if x < mass {
			v := g.bounds[c] + x/int64(cl.Degree)
			if c == a && v >= int64(u) {
				v++ // skip the activated node inside its own class
			}
			return int(v)
		}
		x -= mass
	}
	// Unreachable: the class masses sum exactly to the draw range.
	return int(g.n - 1)
}
