package graph

import (
	"fmt"
	"math"
	"testing"

	"plurality/internal/rng"
	"plurality/internal/stats"
)

// chiSquareUniform asserts that observed counts over equally likely
// outcomes pass a chi-square goodness-of-fit test at the 95% level.
func chiSquareUniform(t *testing.T, label string, observed []int, draws int) {
	t.Helper()
	expected := make([]float64, len(observed))
	per := float64(draws) / float64(len(observed))
	for i := range expected {
		expected[i] = per
	}
	stat := stats.ChiSquare(observed, expected)
	crit := stats.ChiSquareCritical95(len(observed) - 1)
	if stat > crit {
		t.Errorf("%s: chi-square %.1f exceeds 95%% critical value %.1f (df %d)",
			label, stat, crit, len(observed)-1)
	}
}

// TestAdjacencySampleUniformChiSquare: Adjacency.Sample must draw each
// neighbor of a node with equal probability, including for degrees that are
// not powers of two (the Lemire-rejection path of the RNG).
func TestAdjacencySampleUniformChiSquare(t *testing.T) {
	for _, deg := range []int{3, 7, 16} {
		adj := make([][]int32, deg+1)
		// Node 0 is connected to 1 … deg; each neighbor links back.
		for v := 1; v <= deg; v++ {
			adj[0] = append(adj[0], int32(v))
			adj[v] = []int32{0}
		}
		g, err := NewAdjacency(adj)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(1000 + uint64(deg))
		const draws = 60000
		counts := make([]int, deg)
		for i := 0; i < draws; i++ {
			v := g.Sample(r, 0)
			if v < 1 || v > deg {
				t.Fatalf("degree %d: sampled non-neighbor %d", deg, v)
			}
			counts[v-1]++
		}
		chiSquareUniform(t, fmt.Sprintf("adjacency degree %d", deg), counts, draws)
	}
}

// TestGNPSampleUniformChiSquare: neighbor sampling on a G(n,p) graph must
// be uniform over each node's realized adjacency list — the property the
// topology sweep's G(n,p) cells lean on.
func TestGNPSampleUniformChiSquare(t *testing.T) {
	const n = 200
	g, err := NewGNP(n, 0.1, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	// Test the three highest-degree nodes: most bins, strongest test.
	type cand struct{ node, deg int }
	var best [3]cand
	for u := 0; u < n; u++ {
		d := g.Degree(u)
		for i := range best {
			if d > best[i].deg {
				copy(best[i+1:], best[i:])
				best[i] = cand{u, d}
				break
			}
		}
	}
	for _, c := range best {
		nbrs := g.Neighbors(c.node)
		index := make(map[int32]int, len(nbrs))
		for i, v := range nbrs {
			index[v] = i
		}
		draws := 3000 * len(nbrs)
		counts := make([]int, len(nbrs))
		for i := 0; i < draws; i++ {
			v := int32(g.Sample(r, c.node))
			slot, ok := index[v]
			if !ok {
				t.Fatalf("node %d: sampled non-neighbor %d", c.node, v)
			}
			counts[slot]++
		}
		chiSquareUniform(t, "gnp node sampling", counts, draws)
	}
}

// TestCycleSampleUniformChiSquare: Cycle.Sample must pick each of the two
// ring neighbors with equal probability (the RNG's Bool path), including at
// the index-0 wraparound.
func TestCycleSampleUniformChiSquare(t *testing.T) {
	g, err := NewCycle(17)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(23)
	const draws = 60000
	for _, u := range []int{0, 5, 16} {
		left := (u - 1 + g.N()) % g.N()
		right := (u + 1) % g.N()
		counts := make([]int, 2)
		for i := 0; i < draws; i++ {
			switch v := g.Sample(r, u); v {
			case left:
				counts[0]++
			case right:
				counts[1]++
			default:
				t.Fatalf("node %d: sampled non-neighbor %d", u, v)
			}
		}
		chiSquareUniform(t, fmt.Sprintf("cycle node %d", u), counts, draws)
	}
}

// TestTorusSampleUniformChiSquare: Torus.Sample must pick each of the four
// grid neighbors with equal probability, including across both wraparound
// edges and on non-square tori.
func TestTorusSampleUniformChiSquare(t *testing.T) {
	g, err := NewTorus(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(29)
	const draws = 80000
	for _, u := range []int{0, 12, g.N() - 1} {
		x, y := u%g.W, u/g.W
		neighbors := []int{
			y*g.W + (x+1)%g.W,
			y*g.W + (x-1+g.W)%g.W,
			((y+1)%g.H)*g.W + x,
			((y-1+g.H)%g.H)*g.W + x,
		}
		index := make(map[int]int, 4)
		for i, v := range neighbors {
			index[v] = i
		}
		counts := make([]int, 4)
		for i := 0; i < draws; i++ {
			v := g.Sample(r, u)
			slot, ok := index[v]
			if !ok {
				t.Fatalf("node %d: sampled non-neighbor %d", u, v)
			}
			counts[slot]++
		}
		chiSquareUniform(t, fmt.Sprintf("torus node %d", u), counts, draws)
	}
}

// TestGNPDegreeDistributionChiSquare checks the generator itself: empirical
// G(n,p) degrees must be consistent with Binomial(n-1, p) when bucketed
// around the mean. This guards the Batagelj-Brandes skip sampling the sweep
// relies on for topology construction.
func TestGNPDegreeDistributionChiSquare(t *testing.T) {
	const (
		n = 400
		p = 0.1
	)
	// Aggregate degrees across several independent graphs.
	var degrees []int
	for seed := uint64(0); seed < 5; seed++ {
		g, err := NewGNP(n, p, rng.New(100+seed))
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			degrees = append(degrees, g.Degree(u))
		}
	}
	// Buckets: ≤ μ-2σ-ish … ≥ μ+2σ-ish around μ ≈ 39.9, σ ≈ 6.
	bounds := []int{33, 37, 40, 43, 47}
	observed := make([]int, len(bounds)+1)
	for _, d := range degrees {
		slot := len(bounds)
		for i, b := range bounds {
			if d < b {
				slot = i
				break
			}
		}
		observed[slot]++
	}
	expected := make([]float64, len(bounds)+1)
	cum := func(k int) float64 { return binomCDF(n-1, p, k) }
	prev := 0.0
	for i, b := range bounds {
		c := cum(b - 1)
		expected[i] = (c - prev) * float64(len(degrees))
		prev = c
	}
	expected[len(bounds)] = (1 - prev) * float64(len(degrees))
	stat := stats.ChiSquare(observed, expected)
	// Generous gate (99.9%-ish of the 95% critical value scaled ×2): the
	// isolated-node patch-up slightly perturbs the tail, and the test
	// should catch gross bias, not model the patch exactly.
	crit := 2 * stats.ChiSquareCritical95(len(observed)-1)
	if stat > crit {
		t.Errorf("degree distribution chi-square %.1f exceeds %.1f; observed %v expected %v",
			stat, crit, observed, expected)
	}
}

// binomCDF is P[Bin(n, p) <= k], computed by direct summation in log space
// for numerical stability.
func binomCDF(n int, p float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	var sum float64
	logC := 0.0 // log C(n, 0)
	for i := 0; i <= k; i++ {
		if i > 0 {
			logC += math.Log(float64(n-i+1)) - math.Log(float64(i))
		}
		sum += math.Exp(logC + float64(i)*math.Log(p) + float64(n-i)*math.Log(1-p))
	}
	if sum > 1 {
		return 1
	}
	return sum
}
