package graph

import (
	"fmt"
	"testing"

	"plurality/internal/rng"
)

func TestNewRandomRegularValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewRandomRegular(1, 1, r); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := NewRandomRegular(10, 0, r); err == nil {
		t.Error("d=0 should fail")
	}
	if _, err := NewRandomRegular(10, 10, r); err == nil {
		t.Error("d=n should fail")
	}
	if _, err := NewRandomRegular(7, 3, r); err == nil {
		t.Error("odd n·d should fail")
	}
}

// TestRandomRegularSimple: the configuration-model sampler must deliver a
// simple d-regular graph — exact degrees, no self-loops, no multi-edges,
// symmetric adjacency — across degrees that force the repair path (plain
// rejection at d = 8 would need ~e^16 attempts).
func TestRandomRegularSimple(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{100, 2}, {101, 4}, {500, 8}, {64, 3}} {
		g, err := NewRandomRegular(tc.n, tc.d, rng.New(uint64(1000+tc.n)))
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		if g.N() != tc.n {
			t.Fatalf("N = %d, want %d", g.N(), tc.n)
		}
		for u := 0; u < tc.n; u++ {
			nbrs := g.Neighbors(u)
			if len(nbrs) != tc.d {
				t.Fatalf("n=%d d=%d: node %d has degree %d", tc.n, tc.d, u, len(nbrs))
			}
			seen := make(map[int32]bool, tc.d)
			for _, v := range nbrs {
				if int(v) == u {
					t.Fatalf("n=%d d=%d: self-loop at %d", tc.n, tc.d, u)
				}
				if seen[v] {
					t.Fatalf("n=%d d=%d: multi-edge %d-%d", tc.n, tc.d, u, v)
				}
				seen[v] = true
				back := false
				for _, w := range g.Neighbors(int(v)) {
					if int(w) == u {
						back = true
						break
					}
				}
				if !back {
					t.Fatalf("n=%d d=%d: edge %d-%d not symmetric", tc.n, tc.d, u, v)
				}
			}
		}
	}
}

// TestRandomRegularSampleUniformChiSquare mirrors the GNP/Cycle/Torus
// sampling tests: Sample must draw each of a node's d neighbors with equal
// probability.
func TestRandomRegularSampleUniformChiSquare(t *testing.T) {
	for _, d := range []int{3, 4, 8} {
		g, err := NewRandomRegular(200, d, rng.New(uint64(77+d)))
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(uint64(7 + d))
		for _, u := range []int{0, 111, 199} {
			nbrs := g.Neighbors(u)
			index := make(map[int32]int, d)
			for i, v := range nbrs {
				index[v] = i
			}
			draws := 15000 * d
			counts := make([]int, d)
			for i := 0; i < draws; i++ {
				v := int32(g.Sample(r, u))
				slot, ok := index[v]
				if !ok {
					t.Fatalf("d=%d node %d: sampled non-neighbor %d", d, u, v)
				}
				counts[slot]++
			}
			chiSquareUniform(t, fmt.Sprintf("random-regular d=%d node %d", d, u), counts, draws)
		}
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a, err := NewRandomRegular(128, 4, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomRegular(128, 4, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 128; u++ {
		av, bv := a.Neighbors(u), b.Neighbors(u)
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("node %d adjacency differs between identically seeded graphs", u)
			}
		}
	}
}

// TestRandomRegularEdgeDiversity guards against a degenerate repair loop:
// across seeds, the sampled graphs must actually differ (the pairing is
// random, not a fixed canonical matching).
func TestRandomRegularEdgeDiversity(t *testing.T) {
	a, err := NewRandomRegular(100, 4, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomRegular(100, 4, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for u := 0; u < 100 && same; u++ {
		av, bv := a.Neighbors(u), b.Neighbors(u)
		for i := range av {
			if av[i] != bv[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("two differently seeded random regular graphs are identical")
	}
}
