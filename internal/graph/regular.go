package graph

import (
	"fmt"
	"math"

	"plurality/internal/rng"
)

// maxRepairPasses bounds the pairing-repair loop in NewRandomRegular. The
// defect count shrinks geometrically per pass (each re-pairing is a fresh
// uniform matching over a pool that is mostly clean stubs), so real runs
// finish in a handful of passes; the cap only guards degenerate inputs like
// d close to n.
const maxRepairPasses = 200

// NewRandomRegular samples a simple random d-regular graph on n nodes via
// the configuration model: the n·d half-edge stubs are paired uniformly at
// random, then pairings containing self-loops or multi-edges are repaired
// by re-matching the offending pairs together with an equal number of
// randomly chosen clean pairs until the graph is simple. (Plain rejection
// of non-simple pairings needs about e^((d²-1)/4) attempts — already one in
// ~42 at d = 4 and hopeless by d = 8 — while repair touches only the defect
// set; mixing clean pairs into each re-match is what guarantees progress,
// since e.g. two parallel (a,b) pairs can never untangle among themselves.)
// The construction is deterministic given r.
func NewRandomRegular(n, d int, r *rng.RNG) (*Adjacency, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: random regular graph needs n >= 2, got %d", n)
	}
	if d < 1 || d >= n {
		return nil, fmt.Errorf("graph: random regular graph needs 1 <= d < n, got d = %d with n = %d", d, n)
	}
	if n%2 != 0 && d%2 != 0 {
		return nil, fmt.Errorf("graph: random %d-regular graph on %d nodes needs n·d even", d, n)
	}
	if int64(n)*int64(d) > math.MaxUint32 {
		return nil, fmt.Errorf("graph: %d-regular graph on %d nodes overflows the 32-bit CSR offsets", d, n)
	}
	stubs := make([]int32, n*d)
	for i := range stubs {
		stubs[i] = int32(i / d)
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	if err := repairPairing(stubs, n, d, r); err != nil {
		return nil, err
	}
	return newCSRFromPairs(n, stubs)
}

// repairPairing rewires the stub pairing (stubs[2i], stubs[2i+1]) in place
// until it encodes a simple graph. Each pass scans every node's d
// incidences (a tiny insertion sort makes duplicates adjacent), pools the
// defective pairs — self-loops and all-but-one of each duplicate-edge
// group — with an equal number of random clean pairs, and re-matches the
// pooled stubs with a fresh shuffle.
func repairPairing(stubs []int32, n, d int, r *rng.RNG) error {
	m := len(stubs) / 2
	var (
		nbrAll = make([]int32, len(stubs)) // node u's incidences at [u*d, (u+1)*d)
		pidAll = make([]int32, len(stubs)) // pair index of each incidence
		fill   = make([]int32, n)
		inPool = make([]bool, m)
		pool   []int32 // pair indices queued for re-matching
		loose  []int32 // their stubs
	)
	for pass := 0; pass < maxRepairPasses; pass++ {
		for i := range fill {
			fill[i] = 0
		}
		for i := 0; i < m; i++ {
			a, b := stubs[2*i], stubs[2*i+1]
			nbrAll[int(a)*d+int(fill[a])] = b
			pidAll[int(a)*d+int(fill[a])] = int32(i)
			fill[a]++
			nbrAll[int(b)*d+int(fill[b])] = a
			pidAll[int(b)*d+int(fill[b])] = int32(i)
			fill[b]++
		}
		pool = pool[:0]
		for u := 0; u < n; u++ {
			base := u * d
			for i := 1; i < d; i++ {
				for j := base + i; j > base && nbrAll[j] < nbrAll[j-1]; j-- {
					nbrAll[j], nbrAll[j-1] = nbrAll[j-1], nbrAll[j]
					pidAll[j], pidAll[j-1] = pidAll[j-1], pidAll[j]
				}
			}
			for i := 0; i < d; i++ {
				p := pidAll[base+i]
				bad := int(nbrAll[base+i]) == u ||
					(i > 0 && nbrAll[base+i] == nbrAll[base+i-1])
				if bad && !inPool[p] {
					inPool[p] = true
					pool = append(pool, p)
				}
			}
		}
		if len(pool) == 0 {
			return nil
		}
		// Mix in as many random clean pairs as defective ones. The defect
		// fraction is O(d/n), so rejection sampling against the pool flag
		// terminates immediately in practice.
		for extra := len(pool); extra > 0 && len(pool) < m; {
			p := int32(r.Intn(m))
			if !inPool[p] {
				inPool[p] = true
				pool = append(pool, p)
				extra--
			}
		}
		loose = loose[:0]
		for _, p := range pool {
			loose = append(loose, stubs[2*p], stubs[2*p+1])
		}
		r.Shuffle(len(loose), func(i, j int) { loose[i], loose[j] = loose[j], loose[i] })
		for j, p := range pool {
			stubs[2*p] = loose[2*j]
			stubs[2*p+1] = loose[2*j+1]
			inPool[p] = false
		}
	}
	return fmt.Errorf("graph: random %d-regular pairing on %d nodes failed to simplify after %d repair passes", d, n, maxRepairPasses)
}
