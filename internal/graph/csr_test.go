package graph

import (
	"testing"
	"testing/quick"

	"plurality/internal/rng"
)

// randomJagged generates a random connected-enough adjacency structure
// (every node gets at least one neighbor) from a seed, returning the jagged
// reference representation.
func randomJagged(seed uint64) [][]int32 {
	r := rng.New(seed)
	n := 2 + r.Intn(40)
	adj := make([][]int32, n)
	edges := n + r.Intn(3*n)
	for i := 0; i < edges; i++ {
		u := r.Intn(n)
		v := r.IntnExcept(n, u)
		adj[u] = append(adj[u], int32(v))
		adj[v] = append(adj[v], int32(u))
	}
	for u := range adj {
		if len(adj[u]) == 0 {
			v := r.IntnExcept(n, u)
			adj[u] = append(adj[u], int32(v))
			adj[v] = append(adj[v], int32(u))
		}
	}
	return adj
}

// TestCSRMatchesJaggedProperty: over random graphs, the CSR representation
// must agree with the jagged reference on N, Degree and Neighbors, and
// Sample must be distribution-identical — it consumes the RNG exactly as
// the jagged form did (one Intn(degree) draw indexing the neighbor list),
// so identically seeded draws must return identical nodes.
func TestCSRMatchesJaggedProperty(t *testing.T) {
	check := func(seed uint64) bool {
		adj := randomJagged(seed)
		g, err := NewAdjacency(adj)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if g.N() != len(adj) {
			return false
		}
		for u, nbrs := range adj {
			if g.Degree(u) != len(nbrs) {
				return false
			}
			row := g.Neighbors(u)
			for i := range nbrs {
				if row[i] != nbrs[i] {
					return false
				}
			}
		}
		// Identical RNG streams must produce identical samples: the CSR
		// draw is nbrs[r.Intn(deg)] exactly like the jagged draw.
		ra, rb := rng.New(seed^0x9e3779b97f4a7c15), rng.New(seed^0x9e3779b97f4a7c15)
		for trial := 0; trial < 200; trial++ {
			u := int(ra.Uint64n(uint64(len(adj))))
			if int(rb.Uint64n(uint64(len(adj)))) != u {
				return false
			}
			want := int(adj[u][ra.Intn(len(adj[u]))])
			if g.Sample(rb, u) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCSRSampleZeroAllocs guards the sampling hot path: steady-state
// neighbor draws on the CSR representation must not allocate.
func TestCSRSampleZeroAllocs(t *testing.T) {
	g, err := NewGNP(500, 0.05, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(12)
	u := 0
	sink := 0
	allocs := testing.AllocsPerRun(1000, func() {
		sink += g.Sample(r, u)
		u++
		if u == g.N() {
			u = 0
		}
	})
	if allocs != 0 {
		t.Fatalf("Sample allocates %.1f per run, want 0", allocs)
	}
	_ = sink
}

// TestGNPIsolatedNodePatchRegression: even at p small enough that most
// nodes draw no Batagelj-Brandes edge, every node must come out with
// degree >= 1 (the patch edge) and Sample must be total — the regression
// the degree-0 panic fix pins down.
func TestGNPIsolatedNodePatchRegression(t *testing.T) {
	g, err := NewGNP(300, 1e-6, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) < 1 {
			t.Fatalf("node %d isolated after patching", u)
		}
		if v := g.Sample(r, u); v < 0 || v >= g.N() || v == u {
			t.Fatalf("node %d sampled invalid neighbor %d", u, v)
		}
	}
}
