// Package graph provides the communication topologies the protocols sample
// neighbors from. The paper analyzes the complete graph K_n; the other
// topologies (cycle, torus, Erdős–Rényi) are extension substrates used by
// examples and robustness tests.
//
// The only operation protocols need is drawing a uniformly random neighbor,
// so Graph is deliberately minimal and sampling on the clique is O(1)
// without materializing edges.
package graph

import (
	"fmt"
	"math"

	"plurality/internal/rng"
)

// Graph is a communication topology over nodes 0 … N()-1.
type Graph interface {
	// N returns the number of nodes.
	N() int
	// Degree returns the number of neighbors of node u.
	Degree(u int) int
	// Sample returns a uniformly random neighbor of node u.
	Sample(r *rng.RNG, u int) int
}

// Complete is the complete graph K_n. If WithSelf is true, Sample draws
// uniformly from all n nodes including u itself, matching protocol variants
// that sample "nodes" rather than "neighbors"; the paper's asymptotics are
// identical either way.
type Complete struct {
	Nodes    int
	WithSelf bool
}

// NewComplete returns K_n without self-sampling.
func NewComplete(n int) (Complete, error) {
	if n < 2 {
		return Complete{}, fmt.Errorf("graph: complete graph needs n >= 2, got %d", n)
	}
	return Complete{Nodes: n}, nil
}

// N implements Graph.
func (g Complete) N() int { return g.Nodes }

// Degree implements Graph.
func (g Complete) Degree(int) int {
	if g.WithSelf {
		return g.Nodes
	}
	return g.Nodes - 1
}

// Sample implements Graph.
func (g Complete) Sample(r *rng.RNG, u int) int {
	if g.WithSelf {
		return r.Intn(g.Nodes)
	}
	return r.IntnExcept(g.Nodes, u)
}

// Cycle is the n-cycle: node u's neighbors are u±1 mod n.
type Cycle struct {
	Nodes int
}

// NewCycle returns the cycle on n >= 3 nodes.
func NewCycle(n int) (Cycle, error) {
	if n < 3 {
		return Cycle{}, fmt.Errorf("graph: cycle needs n >= 3, got %d", n)
	}
	return Cycle{Nodes: n}, nil
}

// N implements Graph.
func (g Cycle) N() int { return g.Nodes }

// Degree implements Graph.
func (g Cycle) Degree(int) int { return 2 }

// Sample implements Graph.
func (g Cycle) Sample(r *rng.RNG, u int) int {
	if r.Bool() {
		return (u + 1) % g.Nodes
	}
	return (u - 1 + g.Nodes) % g.Nodes
}

// Torus is the w×h grid with wraparound; each node has 4 neighbors.
type Torus struct {
	W, H int
}

// NewTorus returns the w×h torus; both sides must be at least 3 so the four
// neighbors are distinct.
func NewTorus(w, h int) (Torus, error) {
	if w < 3 || h < 3 {
		return Torus{}, fmt.Errorf("graph: torus needs sides >= 3, got %dx%d", w, h)
	}
	return Torus{W: w, H: h}, nil
}

// N implements Graph.
func (g Torus) N() int { return g.W * g.H }

// Degree implements Graph.
func (g Torus) Degree(int) int { return 4 }

// Sample implements Graph.
func (g Torus) Sample(r *rng.RNG, u int) int {
	x, y := u%g.W, u/g.W
	switch r.Intn(4) {
	case 0:
		x = (x + 1) % g.W
	case 1:
		x = (x - 1 + g.W) % g.W
	case 2:
		y = (y + 1) % g.H
	default:
		y = (y - 1 + g.H) % g.H
	}
	return y*g.W + x
}

// Adjacency is an explicit adjacency-list graph, used for G(n,p) and any
// custom topology.
type Adjacency struct {
	adj [][]int32
}

// NewAdjacency wraps the given adjacency lists. Every node must have at
// least one neighbor and all entries must be valid node indices.
func NewAdjacency(adj [][]int32) (*Adjacency, error) {
	n := len(adj)
	if n == 0 {
		return nil, fmt.Errorf("graph: empty adjacency")
	}
	for u, nbrs := range adj {
		if len(nbrs) == 0 {
			return nil, fmt.Errorf("graph: node %d has no neighbors", u)
		}
		for _, v := range nbrs {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: node %d has out-of-range neighbor %d", u, v)
			}
		}
	}
	return &Adjacency{adj: adj}, nil
}

// NewGNP samples an Erdős–Rényi graph G(n, p), retrying isolated nodes by
// attaching them to a random other node so the graph is usable by sampling
// protocols. The construction is deterministic given r.
func NewGNP(n int, p float64, r *rng.RNG) (*Adjacency, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: G(n,p) needs n >= 2, got %d", n)
	}
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("graph: G(n,p) needs p in (0,1], got %v", p)
	}
	adj := make([][]int32, n)
	// Batagelj-Brandes geometric skipping over the n(n-1)/2 candidate
	// edges (v, w) with 0 <= w < v < n.
	g := geometricSkip{p: p}
	v, w := 1, -1
	for v < n {
		w += 1 + g.next(r)
		for v < n && w >= v {
			w -= v
			v++
		}
		if v < n {
			adj[v] = append(adj[v], int32(w))
			adj[w] = append(adj[w], int32(v))
		}
	}
	for u := range adj {
		if len(adj[u]) == 0 {
			v := r.IntnExcept(n, u)
			adj[u] = append(adj[u], int32(v))
			adj[v] = append(adj[v], int32(u))
		}
	}
	return NewAdjacency(adj)
}

type geometricSkip struct{ p float64 }

func (g geometricSkip) next(r *rng.RNG) int {
	if g.p >= 1 {
		return 0
	}
	u := 1 - r.Float64()
	s := int(math.Log(u) / math.Log(1-g.p))
	if s < 0 {
		s = 0
	}
	return s
}

// N implements Graph.
func (g *Adjacency) N() int { return len(g.adj) }

// Degree implements Graph.
func (g *Adjacency) Degree(u int) int { return len(g.adj[u]) }

// Sample implements Graph.
func (g *Adjacency) Sample(r *rng.RNG, u int) int {
	nbrs := g.adj[u]
	return int(nbrs[r.Intn(len(nbrs))])
}

// Neighbors returns node u's adjacency list (not a copy; callers must not
// mutate it).
func (g *Adjacency) Neighbors(u int) []int32 { return g.adj[u] }
