// Package graph provides the communication topologies the protocols sample
// neighbors from. The paper analyzes the complete graph K_n; the other
// topologies (cycle, torus, Erdős–Rényi) are extension substrates used by
// examples and robustness tests.
//
// The only operation protocols need is drawing a uniformly random neighbor,
// so Graph is deliberately minimal and sampling on the clique is O(1)
// without materializing edges.
package graph

import (
	"fmt"
	"math"

	"plurality/internal/rng"
)

// Graph is a communication topology over nodes 0 … N()-1.
type Graph interface {
	// N returns the number of nodes.
	N() int
	// Degree returns the number of neighbors of node u.
	Degree(u int) int
	// Sample returns a uniformly random neighbor of node u.
	Sample(r *rng.RNG, u int) int
}

// Complete is the complete graph K_n. If WithSelf is true, Sample draws
// uniformly from all n nodes including u itself, matching protocol variants
// that sample "nodes" rather than "neighbors"; the paper's asymptotics are
// identical either way.
type Complete struct {
	Nodes    int
	WithSelf bool
}

// NewComplete returns K_n without self-sampling.
func NewComplete(n int) (Complete, error) {
	if n < 2 {
		return Complete{}, fmt.Errorf("graph: complete graph needs n >= 2, got %d", n)
	}
	return Complete{Nodes: n}, nil
}

// N implements Graph.
func (g Complete) N() int { return g.Nodes }

// Degree implements Graph.
func (g Complete) Degree(int) int {
	if g.WithSelf {
		return g.Nodes
	}
	return g.Nodes - 1
}

// Sample implements Graph.
func (g Complete) Sample(r *rng.RNG, u int) int {
	if g.WithSelf {
		return r.Intn(g.Nodes)
	}
	return r.IntnExcept(g.Nodes, u)
}

// Cycle is the n-cycle: node u's neighbors are u±1 mod n.
type Cycle struct {
	Nodes int
}

// NewCycle returns the cycle on n >= 3 nodes.
func NewCycle(n int) (Cycle, error) {
	if n < 3 {
		return Cycle{}, fmt.Errorf("graph: cycle needs n >= 3, got %d", n)
	}
	return Cycle{Nodes: n}, nil
}

// N implements Graph.
func (g Cycle) N() int { return g.Nodes }

// Degree implements Graph.
func (g Cycle) Degree(int) int { return 2 }

// Sample implements Graph.
func (g Cycle) Sample(r *rng.RNG, u int) int {
	if r.Bool() {
		return (u + 1) % g.Nodes
	}
	return (u - 1 + g.Nodes) % g.Nodes
}

// Torus is the w×h grid with wraparound; each node has 4 neighbors.
type Torus struct {
	W, H int
}

// NewTorus returns the w×h torus; both sides must be at least 3 so the four
// neighbors are distinct.
func NewTorus(w, h int) (Torus, error) {
	if w < 3 || h < 3 {
		return Torus{}, fmt.Errorf("graph: torus needs sides >= 3, got %dx%d", w, h)
	}
	return Torus{W: w, H: h}, nil
}

// N implements Graph.
func (g Torus) N() int { return g.W * g.H }

// Degree implements Graph.
func (g Torus) Degree(int) int { return 4 }

// Sample implements Graph.
func (g Torus) Sample(r *rng.RNG, u int) int {
	x, y := u%g.W, u/g.W
	switch r.Intn(4) {
	case 0:
		x = (x + 1) % g.W
	case 1:
		x = (x - 1 + g.W) % g.W
	case 2:
		y = (y + 1) % g.H
	default:
		y = (y - 1 + g.H) % g.H
	}
	return y*g.W + x
}

// Adjacency is an explicit-edge graph in compressed sparse row (CSR) form,
// used for G(n,p), random regular graphs and any custom topology: all
// neighbor lists live in one contiguous int32 arena with per-node row
// offsets, so the sampling hot path is two sequential loads from
// cache-packed arrays instead of chasing a jagged [][]int32. Every node has
// at least one neighbor (enforced by the constructors), which is what keeps
// Sample total.
type Adjacency struct {
	arena []int32
	off   []uint32
}

// NewAdjacency packs the given adjacency lists into CSR form. Every node
// must have at least one neighbor — a degree-0 node would have no defined
// Sample — and all entries must be valid node indices.
func NewAdjacency(adj [][]int32) (*Adjacency, error) {
	n := len(adj)
	if n == 0 {
		return nil, fmt.Errorf("graph: empty adjacency")
	}
	var total uint64
	for u, nbrs := range adj {
		if len(nbrs) == 0 {
			return nil, fmt.Errorf("graph: node %d has no neighbors", u)
		}
		for _, v := range nbrs {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: node %d has out-of-range neighbor %d", u, v)
			}
		}
		total += uint64(len(nbrs))
	}
	if total > math.MaxUint32 {
		return nil, fmt.Errorf("graph: %d half-edges overflow the 32-bit CSR offsets", total)
	}
	g := &Adjacency{arena: make([]int32, 0, total), off: make([]uint32, n+1)}
	for u, nbrs := range adj {
		g.arena = append(g.arena, nbrs...)
		g.off[u+1] = uint32(len(g.arena))
	}
	return g, nil
}

// newCSRFromPairs assembles the CSR arrays from a flat list of undirected
// edges (pairs[2i], pairs[2i+1]) via one counting pass and one fill pass.
// Every node must end up with degree >= 1.
func newCSRFromPairs(n int, pairs []int32) (*Adjacency, error) {
	if uint64(len(pairs)) > math.MaxUint32 {
		return nil, fmt.Errorf("graph: %d half-edges overflow the 32-bit CSR offsets", len(pairs))
	}
	off := make([]uint32, n+1)
	for _, v := range pairs {
		off[v+1]++
	}
	for u := 0; u < n; u++ {
		if off[u+1] == 0 {
			return nil, fmt.Errorf("graph: node %d has no neighbors", u)
		}
		off[u+1] += off[u]
	}
	arena := make([]int32, len(pairs))
	cur := make([]uint32, n)
	copy(cur, off[:n])
	for i := 0; i < len(pairs); i += 2 {
		a, b := pairs[i], pairs[i+1]
		arena[cur[a]] = b
		cur[a]++
		arena[cur[b]] = a
		cur[b]++
	}
	return &Adjacency{arena: arena, off: off}, nil
}

// NewGNP samples an Erdős–Rényi graph G(n, p), patching isolated nodes by
// attaching them to a random other node so the graph is usable by sampling
// protocols (Sample requires degree >= 1). The patch distorts G(n,p) only
// in the regime where isolated nodes are common — expected degree (n-1)p
// below 1 — which the sweep compiler rejects; above it the patch is a
// vanishing perturbation. The construction is deterministic given r.
func NewGNP(n int, p float64, r *rng.RNG) (*Adjacency, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: G(n,p) needs n >= 2, got %d", n)
	}
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("graph: G(n,p) needs p in (0,1], got %v", p)
	}
	deg := make([]int32, n)
	var pairs []int32
	// Batagelj-Brandes geometric skipping over the n(n-1)/2 candidate
	// edges (v, w) with 0 <= w < v < n.
	g := geometricSkip{p: p}
	v, w := 1, -1
	for v < n {
		w += 1 + g.next(r)
		for v < n && w >= v {
			w -= v
			v++
		}
		if v < n {
			pairs = append(pairs, int32(v), int32(w))
			deg[v]++
			deg[w]++
		}
	}
	for u := 0; u < n; u++ {
		if deg[u] == 0 {
			x := r.IntnExcept(n, u)
			pairs = append(pairs, int32(u), int32(x))
			deg[u]++
			deg[x]++
		}
	}
	return newCSRFromPairs(n, pairs)
}

type geometricSkip struct{ p float64 }

func (g geometricSkip) next(r *rng.RNG) int {
	if g.p >= 1 {
		return 0
	}
	u := 1 - r.Float64()
	s := int(math.Log(u) / math.Log(1-g.p))
	if s < 0 {
		s = 0
	}
	return s
}

// N implements Graph.
func (g *Adjacency) N() int { return len(g.off) - 1 }

// Degree implements Graph.
func (g *Adjacency) Degree(u int) int { return int(g.off[u+1] - g.off[u]) }

// Sample implements Graph. It is allocation-free and draws exactly as the
// jagged representation did (same RNG consumption), so trajectories are
// bit-identical across the CSR conversion.
func (g *Adjacency) Sample(r *rng.RNG, u int) int {
	o := g.off[u]
	d := int(g.off[u+1] - o)
	return int(g.arena[o+uint32(r.Intn(d))])
}

// Neighbors returns node u's adjacency row (a view into the CSR arena, not
// a copy; callers must not mutate it).
func (g *Adjacency) Neighbors(u int) []int32 { return g.arena[g.off[u]:g.off[u+1]] }
