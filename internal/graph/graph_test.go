package graph

import (
	"math"
	"testing"
	"testing/quick"

	"plurality/internal/rng"
)

func TestNewCompleteValidation(t *testing.T) {
	if _, err := NewComplete(1); err == nil {
		t.Error("NewComplete(1) should fail")
	}
	g, err := NewComplete(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.Degree(0) != 4 {
		t.Fatalf("K_5: N=%d Degree=%d", g.N(), g.Degree(0))
	}
}

func TestCompleteSampleExcludesSelf(t *testing.T) {
	g, err := NewComplete(6)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for u := 0; u < 6; u++ {
		for i := 0; i < 500; i++ {
			if v := g.Sample(r, u); v == u {
				t.Fatalf("sampled self for u=%d", u)
			}
		}
	}
}

func TestCompleteWithSelfCoversAll(t *testing.T) {
	g := Complete{Nodes: 4, WithSelf: true}
	if g.Degree(0) != 4 {
		t.Fatalf("Degree = %d, want 4", g.Degree(0))
	}
	r := rng.New(2)
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		seen[g.Sample(r, 0)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("with-self sampling covered %d of 4 nodes", len(seen))
	}
}

func TestCompleteSampleUniform(t *testing.T) {
	g, err := NewComplete(5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	const draws = 40000
	counts := make([]int, 5)
	for i := 0; i < draws; i++ {
		counts[g.Sample(r, 2)]++
	}
	want := float64(draws) / 4
	for v, c := range counts {
		if v == 2 {
			if c != 0 {
				t.Fatalf("self sampled %d times", c)
			}
			continue
		}
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("neighbor %d: count %d, want ~%.0f", v, c, want)
		}
	}
}

func TestCycle(t *testing.T) {
	if _, err := NewCycle(2); err == nil {
		t.Error("NewCycle(2) should fail")
	}
	g, err := NewCycle(7)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for u := 0; u < 7; u++ {
		left := (u - 1 + 7) % 7
		right := (u + 1) % 7
		for i := 0; i < 100; i++ {
			v := g.Sample(r, u)
			if v != left && v != right {
				t.Fatalf("cycle neighbor of %d = %d, want %d or %d", u, v, left, right)
			}
		}
	}
	if g.Degree(0) != 2 {
		t.Fatalf("Degree = %d, want 2", g.Degree(0))
	}
}

func TestTorus(t *testing.T) {
	if _, err := NewTorus(2, 5); err == nil {
		t.Error("NewTorus(2,5) should fail")
	}
	g, err := NewTorus(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 || g.Degree(0) != 4 {
		t.Fatalf("torus: N=%d Degree=%d", g.N(), g.Degree(0))
	}
	r := rng.New(5)
	// Every sample must be one of the four grid neighbors.
	for u := 0; u < g.N(); u++ {
		x, y := u%4, u/4
		valid := map[int]bool{
			y*4 + (x+1)%4:     true,
			y*4 + (x+3)%4:     true,
			((y+1)%3)*4 + x:   true,
			((y+3-1)%3)*4 + x: true,
		}
		for i := 0; i < 200; i++ {
			if v := g.Sample(r, u); !valid[v] {
				t.Fatalf("torus neighbor of %d = %d not adjacent", u, v)
			}
		}
	}
}

func TestNewAdjacencyValidation(t *testing.T) {
	if _, err := NewAdjacency(nil); err == nil {
		t.Error("empty adjacency should fail")
	}
	if _, err := NewAdjacency([][]int32{{1}, nil}); err == nil {
		t.Error("isolated node should fail")
	}
	if _, err := NewAdjacency([][]int32{{5}, {0}}); err == nil {
		t.Error("out-of-range neighbor should fail")
	}
}

func TestAdjacencySample(t *testing.T) {
	g, err := NewAdjacency([][]int32{{1, 2}, {0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	for i := 0; i < 200; i++ {
		if v := g.Sample(r, 0); v != 1 && v != 2 {
			t.Fatalf("neighbor of 0 = %d", v)
		}
		if v := g.Sample(r, 1); v != 0 {
			t.Fatalf("neighbor of 1 = %d", v)
		}
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 {
		t.Fatal("wrong degrees")
	}
}

func TestNewGNPValidation(t *testing.T) {
	r := rng.New(7)
	if _, err := NewGNP(1, 0.5, r); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := NewGNP(10, 0, r); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := NewGNP(10, 1.5, r); err == nil {
		t.Error("p>1 should fail")
	}
}

func TestNewGNPProperties(t *testing.T) {
	r := rng.New(8)
	const n = 400
	const p = 0.05
	g, err := NewGNP(n, p, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	var edges int
	for u := 0; u < n; u++ {
		if g.Degree(u) == 0 {
			t.Fatalf("node %d isolated", u)
		}
		edges += g.Degree(u)
	}
	edges /= 2
	want := p * n * (n - 1) / 2
	if math.Abs(float64(edges)-want)/want > 0.15 {
		t.Fatalf("edges = %d, want ~%.0f", edges, want)
	}
	// Symmetry: every edge appears in both adjacency lists.
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			found := false
			for _, w := range g.Neighbors(int(v)) {
				if int(w) == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", u, v)
			}
		}
	}
}

func TestGNPDeterministic(t *testing.T) {
	a, err := NewGNP(100, 0.1, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGNP(100, 0.1, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 100; u++ {
		if a.Degree(u) != b.Degree(u) {
			t.Fatalf("node %d degree differs between identically seeded graphs", u)
		}
	}
}

func TestSampleAlwaysValidNode(t *testing.T) {
	// Property: for any topology and node, samples are in range and adjacent
	// (for the clique: not self).
	g, err := NewComplete(17)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(10)
	check := func(seedByte uint8) bool {
		u := int(seedByte) % g.N()
		v := g.Sample(r, u)
		return v >= 0 && v < g.N() && v != u
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
