package graph

import (
	"fmt"
	"testing"

	"plurality/internal/rng"
	"plurality/internal/stats"
)

func TestNewAnnealedValidation(t *testing.T) {
	if _, err := NewAnnealed(nil); err == nil {
		t.Error("no classes should fail")
	}
	if _, err := NewAnnealed([]Class{{Degree: 0, Count: 5}}); err == nil {
		t.Error("degree 0 should fail")
	}
	if _, err := NewAnnealed([]Class{{Degree: 2, Count: 0}}); err == nil {
		t.Error("count 0 should fail")
	}
	if _, err := NewAnnealed([]Class{{Degree: 2, Count: 1}}); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := NewAnnealedRegular(1, 2); err == nil {
		t.Error("regular n=1 should fail")
	}
	if _, err := NewAnnealedRegular(10, 0); err == nil {
		t.Error("regular d=0 should fail")
	}
}

func TestAnnealedClassLayout(t *testing.T) {
	g, err := NewAnnealed([]Class{{Degree: 2, Count: 3}, {Degree: 5, Count: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 7 {
		t.Fatalf("N = %d, want 7", g.N())
	}
	wantDeg := []int{2, 2, 2, 5, 5, 5, 5}
	for u, want := range wantDeg {
		if g.Degree(u) != want {
			t.Fatalf("Degree(%d) = %d, want %d", u, g.Degree(u), want)
		}
	}
	cls := g.Classes()
	if len(cls) != 2 || cls[0] != (Class{Degree: 2, Count: 3}) || cls[1] != (Class{Degree: 5, Count: 4}) {
		t.Fatalf("Classes() = %v", cls)
	}
}

// TestAnnealedSampleDegreeBiasedChiSquare: Sample(u) must return each node
// v ≠ u with probability deg(v) / (W − deg(u)) — the half-edge law of the
// annealed configuration model. Tested from nodes in both classes of a
// two-class graph via chi-square against the exact law.
func TestAnnealedSampleDegreeBiasedChiSquare(t *testing.T) {
	g, err := NewAnnealed([]Class{{Degree: 2, Count: 5}, {Degree: 6, Count: 5}})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	totalW := 2*5 + 6*5
	r := rng.New(314)
	for _, u := range []int{0, 4, 5, 9} {
		const draws = 120000
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			v := g.Sample(r, u)
			if v == u {
				t.Fatalf("node %d sampled itself", u)
			}
			counts[v]++
		}
		if counts[u] != 0 {
			t.Fatalf("node %d sampled itself %d times", u, counts[u])
		}
		pool := float64(totalW - g.Degree(u))
		expected := make([]float64, 0, n-1)
		observed := make([]int, 0, n-1)
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			observed = append(observed, counts[v])
			expected = append(expected, draws*float64(g.Degree(v))/pool)
		}
		stat := stats.ChiSquare(observed, expected)
		crit := stats.ChiSquareCritical95(len(observed) - 1)
		if stat > crit {
			t.Errorf("node %d: chi-square %.1f exceeds 95%% critical value %.1f", u, stat, crit)
		}
	}
}

// TestAnnealedRegularMatchesCompleteLaw: a single degree class degenerates
// to the clique's uniform-except-self law independently of d — the identity
// the lumped engine's single-class delegation to the occupancy engine rests
// on.
func TestAnnealedRegularMatchesCompleteLaw(t *testing.T) {
	for _, d := range []int{2, 4, 9} {
		g, err := NewAnnealedRegular(12, d)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(uint64(55 + d))
		const draws = 60000
		counts := make([]int, 12)
		for i := 0; i < draws; i++ {
			counts[g.Sample(r, 3)]++
		}
		if counts[3] != 0 {
			t.Fatalf("d=%d: sampled self %d times", d, counts[3])
		}
		observed := append(append([]int{}, counts[:3]...), counts[4:]...)
		chiSquareUniform(t, fmt.Sprintf("annealed regular d=%d", d), observed, draws)
	}
}

// TestAnnealedOf lumps a quenched graph's degree sequence: class counts
// must reproduce the degree histogram in ascending degree order, and
// lumping an already annealed graph is the identity.
func TestAnnealedOf(t *testing.T) {
	q, err := NewAdjacency([][]int32{{1, 2}, {0}, {0, 3}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnnealedOf(q)
	if err != nil {
		t.Fatal(err)
	}
	cls := a.Classes()
	if len(cls) != 2 || cls[0] != (Class{Degree: 1, Count: 2}) || cls[1] != (Class{Degree: 2, Count: 2}) {
		t.Fatalf("Classes() = %v", cls)
	}
	again, err := AnnealedOf(a)
	if err != nil {
		t.Fatal(err)
	}
	if again != a {
		t.Fatal("AnnealedOf of an Annealed graph should be the identity")
	}

	c, err := NewCycle(9)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := AnnealedOf(c)
	if err != nil {
		t.Fatal(err)
	}
	if cls := ac.Classes(); len(cls) != 1 || cls[0] != (Class{Degree: 2, Count: 9}) {
		t.Fatalf("annealed cycle classes = %v", cls)
	}
}

// TestQuenchedGraphsAreNotClassed pins the fallback contract: the quenched
// topologies must not advertise the lumpable symmetry (their dynamics are
// not exchangeable within a degree class), so per-node runs on them stay
// bit-identical under engine auto-selection.
func TestQuenchedGraphsAreNotClassed(t *testing.T) {
	quenched := []Graph{Cycle{Nodes: 5}, Torus{W: 3, H: 3}, &Adjacency{}, Complete{Nodes: 4}}
	for _, g := range quenched {
		if _, ok := g.(Classed); ok {
			t.Errorf("%T must not implement Classed", g)
		}
	}
	var g Graph = &Annealed{}
	if _, ok := g.(Classed); !ok {
		t.Error("*Annealed must implement Classed")
	}
}
