// Package plurality is a library for distributed plurality consensus on the
// complete graph, reproducing "Brief Announcement: Rapid Asynchronous
// Plurality Consensus" (Elsässer, Friedetzky, Kaaser, Mallmann-Trenn,
// Trinker; PODC 2017).
//
// n nodes each hold one of k opinions (colors); the goal is for every node
// to adopt the *plurality* color — the initially most frequent one — using
// only tiny local samples. The package implements:
//
//   - "core": the paper's main contribution (Theorem 1.3), an asynchronous
//     protocol under unit-rate Poisson clocks that converges in Θ(log n)
//     parallel time given a (1+ε)-multiplicative bias, built from
//     Two-Choices steps, Bit-Propagation, and a Sync Gadget that maintains
//     weak synchronicity.
//   - "onebit": the synchronous phase protocol of Theorem 1.2.
//   - a registry of memoryless sampling dynamics (Protocols): Two-Choices
//     (Theorem 1.1), Voter, 3-Majority, Undecided-State Dynamics and
//     j-Majority, each runnable synchronously, asynchronously per node, or
//     count-collapsed in O(k) memory at n = 10⁸–10⁹.
//
// # Quick start
//
//	counts, _ := plurality.Biased(100_000, 8, 0.5) // c1 = 1.5·c2
//	job, err := plurality.NewJob("core", counts, plurality.WithSeed(42))
//	if err != nil { ... }
//	rep, err := job.Run(ctx)
//	fmt.Println(rep.Winner, rep.ConsensusTime) // 0, Θ(log n)
//
// A Job is the validated, reusable binding of protocol spec × initial
// counts × options; Job.Run honors context cancellation inside every
// engine loop, Job.Trials fans deterministic pooled trials across cores
// for every protocol, and WithObserver streams histogram snapshots from
// any runner. The legacy one-shot entry points (RunCore, RunDynamic, …)
// remain as bit-identical shims over the same execution layer.
//
// All runs are deterministic given WithSeed. See DESIGN.md for the paper
// mapping and EXPERIMENTS.md for the reproduced results.
package plurality

import (
	"plurality/internal/core"
	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/protocols"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/protocols/onebit"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// Re-exported core types. The aliases expose the full method sets of the
// underlying implementations without requiring users to import internal
// packages.
type (
	// Color identifies an opinion (0 … k-1); None marks its absence.
	Color = population.Color
	// Population is the mutable opinion state of n nodes over k colors.
	Population = population.Population
	// Graph is a communication topology; the default is the complete
	// graph the paper analyzes.
	Graph = graph.Graph

	// CoreResult describes a run of the asynchronous core protocol.
	CoreResult = core.Result
	// CoreProbe is a periodic synchronization-quality snapshot.
	CoreProbe = core.Probe
	// CoreSpec is the resolved working-time schedule of a core run.
	CoreSpec = core.Spec
	// SyncResult describes a synchronous sampling-dynamics run.
	SyncResult = dynamics.SyncResult
	// AsyncResult describes an asynchronous sampling-dynamics run.
	AsyncResult = dynamics.AsyncResult
	// OneExtraBitResult describes a OneExtraBit run.
	OneExtraBitResult = onebit.Result
	// PhaseInfo is delivered per OneExtraBit phase.
	PhaseInfo = onebit.PhaseInfo

	// EdgeLatency is a per-edge message-latency model for the asynchronous
	// edge-latency extension (after Bankhamer et al.); see WithEdgeLatency.
	EdgeLatency = sched.LatencyModel

	// Protocol describes one registered sampling-dynamics family: its
	// names, update rule, source paper, engine support and the hooks the
	// runners resolve. See Protocols and RunDynamic.
	Protocol = protocols.Descriptor
)

// Protocols returns the registry of sampling-dynamics protocol families in
// presentation order: Two-Choices, Voter, 3-Majority, Undecided-State
// Dynamics and parameterized j-Majority. Every name-based entry point —
// RunDynamic, the experiment harness's protocol axis, the CLIs — resolves
// against this registry, so the slice is also the authoritative answer to
// "which protocols does this library run?". (The paper's core protocol and
// OneExtraBit are not sampling dynamics and keep their dedicated runners.)
func Protocols() []Protocol { return protocols.Registry() }

// LookupProtocol resolves a protocol spec — "name" or "name:param", e.g.
// "usd" or "j-majority:5" — against the registry, validating the parameter
// without running anything.
func LookupProtocol(spec string) (Protocol, error) {
	d, _, err := protocols.Lookup(spec)
	return d, err
}

// ExpEdgeLatency returns an edge-latency model drawing i.i.d. exponential
// latencies with the given mean, the distribution Bankhamer et al. analyze.
func ExpEdgeLatency(mean float64) EdgeLatency { return sched.ExpLatency{Mean: mean} }

// UniformEdgeLatency returns an edge-latency model drawing i.i.d. latencies
// uniformly from [lo, hi).
func UniformEdgeLatency(lo, hi float64) EdgeLatency { return sched.UniformLatency{Min: lo, Max: hi} }

// None is the absence of a color.
const None = population.None

// Sentinel errors surfaced by the runners; match with errors.Is.
var (
	// ErrNoConsensus reports a core run that ended without agreement.
	ErrNoConsensus = core.ErrNoConsensus
	// ErrTimeLimit reports a dynamics run that exhausted its budget.
	ErrTimeLimit = dynamics.ErrTimeLimit
	// ErrPhaseLimit reports a OneExtraBit run that exhausted its phases.
	ErrPhaseLimit = onebit.ErrPhaseLimit
)

// NewPopulation creates a population whose color histogram equals counts;
// color j starts with counts[j] supporters.
func NewPopulation(counts []int64) (*Population, error) {
	return population.FromCounts(counts)
}

// Workload constructors: initial color histograms for the regimes the
// paper's theorems address.

// Biased is Theorem 1.3's regime: c1 = (1+eps)·c2 with the remaining nodes
// split evenly over colors 1 … k-1.
func Biased(n, k int, eps float64) ([]int64, error) {
	return population.BiasedCounts(n, k, eps)
}

// GapSqrt is Theorem 1.1's tight regime: c1 − c2 = z·sqrt(n·ln n) with
// c2 = … = ck.
func GapSqrt(n, k int, z float64) ([]int64, error) {
	return population.GapSqrtCounts(n, k, z)
}

// GapSqrtPolylog is Theorem 1.2's regime: c1 − c2 = z·sqrt(n)·ln^1.5 n.
func GapSqrtPolylog(n, k int, z float64) ([]int64, error) {
	return population.GapSqrtPolylogCounts(n, k, z)
}

// TinyGap is the negative-result regime: c1 − c2 = z·sqrt(n), where a
// non-plurality color wins Two-Choices with constant probability.
func TinyGap(n, k int, z float64) ([]int64, error) {
	return population.TinyGapCounts(n, k, z)
}

// Uniform splits n nodes evenly over k colors.
func Uniform(n, k int) ([]int64, error) {
	return population.UniformCounts(n, k)
}

// Zipf assigns supports proportional to 1/(rank+1)^s.
func Zipf(n, k int, s float64) ([]int64, error) {
	return population.ZipfCounts(n, k, s)
}

// Topology constructors beyond the default complete graph (extensions; the
// paper's results are for the clique).

// CompleteGraph returns K_n.
func CompleteGraph(n int) (Graph, error) { return graph.NewComplete(n) }

// CycleGraph returns the n-cycle.
func CycleGraph(n int) (Graph, error) { return graph.NewCycle(n) }

// TorusGraph returns the w×h torus.
func TorusGraph(w, h int) (Graph, error) { return graph.NewTorus(w, h) }

// RandomGraph returns a deterministic Erdős–Rényi G(n, p) sampled from
// seed.
func RandomGraph(n int, p float64, seed uint64) (Graph, error) {
	return graph.NewGNP(n, p, rng.New(seed))
}

// RandomRegularGraph returns a deterministic simple random d-regular graph
// on n nodes sampled from seed via the configuration model (n·d must be
// even). Like every quenched topology it runs per node; see
// AnnealedRegularGraph for the lumpable mean-field counterpart.
func RandomRegularGraph(n, d int, seed uint64) (Graph, error) {
	return graph.NewRandomRegular(n, d, rng.New(seed))
}

// AnnealedRegularGraph returns the annealed (mean-field) d-regular
// configuration model on n nodes: every neighbor sample draws a fresh
// uniformly random partner half-edge instead of following fixed wiring.
// Annealed topologies report their degree-class symmetry, so dynamics runs
// on them collapse to the O(classes × colors) lumped engine.
func AnnealedRegularGraph(n, d int) (Graph, error) {
	return graph.NewAnnealedRegular(n, d)
}

// AnnealedGraph returns the annealed configuration model with g's degree
// sequence: the degree-class lumped mean-field counterpart of any quenched
// topology (for an Erdős–Rényi graph, the degree-partitioned annealed
// G(n, p)).
func AnnealedGraph(g Graph) (Graph, error) {
	return graph.AnnealedOf(g)
}

// PlanCore resolves the core protocol's working-time schedule (block length
// ∆, phase count, gadget length, endgame budget) for n nodes under the
// given options, without running anything.
func PlanCore(n int, opts ...Option) (CoreSpec, error) {
	o := newOptions(opts)
	return core.Plan(o.coreConfig(nil), n)
}
