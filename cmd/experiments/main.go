// Command experiments regenerates the paper-reproduction tables recorded in
// EXPERIMENTS.md. Each experiment ID (e1 … e12) corresponds to one
// quantitative claim of the paper; see DESIGN.md §5 for the mapping.
//
// Examples:
//
//	experiments -list
//	experiments -run e6
//	experiments -run all -quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"plurality/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list  = fs.Bool("list", false, "list all experiments and exit")
		ids   = fs.String("run", "all", "comma-separated experiment IDs (e1..e12) or 'all'")
		quick = fs.Bool("quick", false, "use reduced parameter grids")
		seed  = fs.Uint64("seed", 1, "base random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(out, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		for _, e := range bench.Ablations() {
			fmt.Fprintf(out, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	var selected []bench.Experiment
	switch *ids {
	case "all":
		selected = bench.All()
	case "ablations":
		selected = bench.Ablations()
	case "everything":
		selected = append(bench.All(), bench.Ablations()...)
	default:
		for _, id := range strings.Split(*ids, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	mode := "full"
	if *quick {
		mode = "quick"
	}
	for _, e := range selected {
		fmt.Fprintf(out, "== %s: %s [%s mode]\n", e.ID, e.Title, mode)
		fmt.Fprintf(out, "claim: %s\n\n", e.Claim)
		start := time.Now()
		if err := e.Run(bench.Config{Out: out, Quick: *quick, Seed: *seed}); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(out, "(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	return nil
}
