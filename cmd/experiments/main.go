// Command experiments is the driver for the declarative scenario/sweep
// engine (internal/exp) and for the paper-reproduction tables (e1 … e12).
//
// Named sweeps grid the scenario space (population size, edge latencies,
// churn, topologies), emit the schema-stable BENCH_exp JSON artifact
// family, run their statistical gates (e.g. the Θ(log n) slope check of
// Theorem 1.3) and optionally diff against a committed baseline within
// tolerance bands — the CI regression harness. See EXPERIMENTS.md.
//
// Examples:
//
//	experiments -sweep list
//	experiments -sweep logn-scaling -smoke
//	experiments -sweep all -smoke -out BENCH_exp.json -baseline BENCH_exp_baseline.json
//	experiments -list
//	experiments -run e6
//	experiments -run all -quick
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"plurality/internal/bench"
	"plurality/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list  = fs.Bool("list", false, "list all experiments and exit")
		ids   = fs.String("run", "all", "comma-separated experiment IDs (e1..e12) or 'all'")
		quick = fs.Bool("quick", false, "use reduced parameter grids")
		seed  = fs.Uint64("seed", 1, "base random seed")

		schedBench      = fs.Bool("schedbench", false, "benchmark the scheduler engines instead of running experiments")
		schedBenchNs    = fs.String("schedbench-n", "10000,1000000", "comma-separated population sizes for -schedbench (up to 1e7)")
		schedBenchTicks = fs.Int64("schedbench-ticks", 5_000_000, "activations delivered per -schedbench measurement")
		schedBenchOut   = fs.String("schedbench-out", "", "write the -schedbench report as JSON to this file (e.g. BENCH_sched.json)")

		scaleBench    = fs.Bool("scalebench", false, "benchmark the per-node vs count-collapsed dynamics engines (-smoke selects the CI grid)")
		scaleBenchOut = fs.String("scalebench-out", "", "write the -scalebench report as JSON to this file (e.g. BENCH_scale.json)")
		scaleBaseline = fs.String("scale-baseline", "", "diff the -scalebench report against this baseline; regressions beyond -scale-tol fail")
		scaleTol      = fs.Float64("scale-tol", 0.5, "relative tolerance band for -scale-baseline comparison")

		serveBench    = fs.Bool("servebench", false, "load-test the pluralityd service layer (-smoke selects the CI load)")
		serveBenchOut = fs.String("servebench-out", "", "write the -servebench report as JSON to this file (e.g. BENCH_serve.json)")
		serveBaseline = fs.String("serve-baseline", "", "diff the -servebench report against this baseline; regressions beyond -serve-tol fail")
		serveTol      = fs.Float64("serve-tol", 0.05, "relative tolerance band for -serve-baseline comparison (the reference ticks are deterministic)")

		leapBench    = fs.Bool("leapbench", false, "benchmark the hybrid tau-leap/mean-field engine (-smoke selects the CI grid)")
		leapBenchOut = fs.String("leapbench-out", "", "write the -leapbench report as JSON to this file (e.g. BENCH_leap_baseline.json)")
		leapBaseline = fs.String("leap-baseline", "", "diff the -leapbench report against this baseline; regressions beyond -leap-tol fail")
		leapTol      = fs.Float64("leap-tol", 0.5, "relative tolerance band for -leap-baseline comparison")

		sweep    = fs.String("sweep", "", "named sweep(s) to run: comma-separated names, 'all', or 'list'")
		smoke    = fs.Bool("smoke", false, "use the down-scaled smoke grids (CI size)")
		trials   = fs.Int("trials", 0, "override the per-cell trial count (0 = sweep default)")
		workers  = fs.Int("workers", 0, "worker goroutines for sweep cells (0 = GOMAXPROCS)")
		timeout  = fs.Duration("timeout", 0, "wall-clock budget for the sweep run; simulations are canceled mid-engine-loop when it expires (0 = none)")
		sweepOut = fs.String("out", "", "write the sweep bundle as JSON to this file (e.g. BENCH_exp.json)")
		baseline = fs.String("baseline", "", "diff sweep results against this bundle; regressions beyond -tol fail")
		tol      = fs.Float64("tol", 0.25, "relative tolerance band for -baseline comparison")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *schedBench {
		return runSchedBench(out, *schedBenchNs, *schedBenchTicks, *seed, *schedBenchOut)
	}

	if *scaleBench {
		return runScaleBench(out, *smoke, *seed, *scaleBenchOut, *scaleBaseline, *scaleTol)
	}

	if *serveBench {
		return runServeBench(out, *smoke, *seed, *serveBenchOut, *serveBaseline, *serveTol)
	}

	if *leapBench {
		return runLeapBench(out, *smoke, *seed, *leapBenchOut, *leapBaseline, *leapTol)
	}

	if *sweep != "" {
		return runSweeps(out, sweepConfig{
			names:    *sweep,
			smoke:    *smoke,
			trials:   *trials,
			workers:  *workers,
			timeout:  *timeout,
			seed:     *seed,
			outPath:  *sweepOut,
			baseline: *baseline,
			tol:      *tol,
		})
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(out, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		for _, e := range bench.Ablations() {
			fmt.Fprintf(out, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	var selected []bench.Experiment
	switch *ids {
	case "all":
		selected = bench.All()
	case "ablations":
		selected = bench.Ablations()
	case "everything":
		selected = append(bench.All(), bench.Ablations()...)
	default:
		for _, id := range strings.Split(*ids, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	mode := "full"
	if *quick {
		mode = "quick"
	}
	for _, e := range selected {
		fmt.Fprintf(out, "== %s: %s [%s mode]\n", e.ID, e.Title, mode)
		fmt.Fprintf(out, "claim: %s\n\n", e.Claim)
		start := time.Now()
		if err := e.Run(bench.Config{Out: out, Quick: *quick, Seed: *seed}); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(out, "(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	return nil
}

// sweepConfig carries the -sweep flag group.
type sweepConfig struct {
	names    string
	smoke    bool
	trials   int
	workers  int
	timeout  time.Duration
	seed     uint64
	outPath  string
	baseline string
	tol      float64
}

// runSweeps executes the selected named sweeps, runs their gates, writes
// the bundle artifact, and — when a baseline is given — fails on any
// tolerance-band regression. Gate failures fail the run even without a
// baseline: the gates are the sweeps' built-in acceptance checks.
func runSweeps(out io.Writer, cfg sweepConfig) error {
	if cfg.names == "list" {
		for _, ns := range exp.Named() {
			fmt.Fprintf(out, "%-14s %s\n", ns.Name, ns.Description)
		}
		return nil
	}

	var selected []exp.NamedSweep
	if cfg.names == "all" {
		selected = exp.Named()
	} else {
		for _, name := range strings.Split(cfg.names, ",") {
			ns, ok := exp.NamedByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown sweep %q (use -sweep list)", name)
			}
			selected = append(selected, ns)
		}
	}

	var base *exp.Bundle
	if cfg.baseline != "" {
		var err error
		if base, err = exp.LoadBundle(cfg.baseline); err != nil {
			return err
		}
	}

	// One wall-clock budget for the whole selection; expiry cancels the
	// running simulations inside their engine loops.
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	bundle := exp.NewBundle()
	var failures []string
	for _, ns := range selected {
		mode := "full"
		if cfg.smoke {
			mode = "smoke"
		}
		fmt.Fprintf(out, "== sweep %s [%s]\n", ns.Name, mode)
		start := time.Now()
		sw := ns.Build(cfg.smoke, cfg.seed, cfg.trials)
		rep, err := sw.Run(exp.Options{Workers: cfg.workers, Log: out, Context: ctx})
		if err != nil {
			return err
		}
		rep.Smoke = cfg.smoke
		if ns.Check != nil {
			ns.Check(rep)
		}
		for _, g := range rep.Gates {
			status := "PASS"
			if !g.Pass {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s gate %s: %s", ns.Name, g.Name, g.Detail))
			}
			fmt.Fprintf(out, "  gate %-18s %s  %s\n", g.Name, status, g.Detail)
		}
		if base != nil {
			if baseRep, ok := base.Reports[ns.Name]; ok {
				regs := exp.Compare(rep, baseRep, cfg.tol)
				for _, r := range regs {
					failures = append(failures, fmt.Sprintf("%s vs baseline: %s", ns.Name, r))
					fmt.Fprintf(out, "  REGRESSION %s\n", r)
				}
				if len(regs) == 0 {
					fmt.Fprintf(out, "  baseline: clean (tol %.0f%%)\n", cfg.tol*100)
				}
			} else {
				fmt.Fprintf(out, "  baseline: no entry for %s (skipped)\n", ns.Name)
			}
		}
		bundle.Reports[ns.Name] = rep
		fmt.Fprintf(out, "(%s completed in %.1fs)\n\n", ns.Name, time.Since(start).Seconds())
	}

	if cfg.outPath != "" {
		f, err := os.Create(cfg.outPath)
		if err != nil {
			return err
		}
		if err := bundle.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", cfg.outPath)
	}

	if len(failures) > 0 {
		return fmt.Errorf("%d sweep check(s) failed:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// runScaleBench measures the per-node vs count-collapsed dynamics engines
// (full Two-Choices consensus runs per engine × n), optionally records the
// report as JSON — the procedure behind BENCH_scale.json and the committed
// smoke baseline — and, when a baseline is given, fails on any
// tolerance-band regression.
func runScaleBench(out io.Writer, smoke bool, seed uint64, jsonPath, baselinePath string, tol float64) error {
	rep, err := bench.RunScaleBench(bench.ScaleBenchConfig{Smoke: smoke, Seed: seed}, out)
	if err != nil {
		return err
	}
	for _, n := range sortedKeys(rep.SpeedupAtN) {
		fmt.Fprintf(out, "speedup(count-collapsed vs per-node) at n=%s: %.1fx\n", n, rep.SpeedupAtN[n])
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	if baselinePath != "" {
		base, err := bench.LoadScaleBench(baselinePath)
		if err != nil {
			return err
		}
		regs := bench.CompareScale(rep, base, tol)
		for _, r := range regs {
			fmt.Fprintf(out, "  REGRESSION %s\n", r)
		}
		if len(regs) > 0 {
			return fmt.Errorf("%d scale regression(s) against %s", len(regs), baselinePath)
		}
		fmt.Fprintf(out, "scale baseline: clean (tol %.0f%%)\n", tol*100)
	}
	return nil
}

// runServeBench load-tests the pluralityd service layer (a real daemon
// behind a real listener: distinct-job throughput, the cache probe, queue
// backpressure), runs the report's built-in invariants, optionally records
// the report as JSON — the procedure behind the committed
// BENCH_serve_baseline.json — and, when a baseline is given, fails on any
// machine-portable regression.
func runServeBench(out io.Writer, smoke bool, seed uint64, jsonPath, baselinePath string, tol float64) error {
	rep, err := bench.RunServeBench(bench.ServeBenchConfig{Smoke: smoke, Seed: seed}, out)
	if err != nil {
		return err
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	if baselinePath != "" {
		base, err := bench.LoadServeBench(baselinePath)
		if err != nil {
			return err
		}
		regs := bench.CompareServe(rep, base, tol)
		for _, r := range regs {
			fmt.Fprintf(out, "  REGRESSION %s\n", r)
		}
		if len(regs) > 0 {
			return fmt.Errorf("%d serve regression(s) against %s", len(regs), baselinePath)
		}
		fmt.Fprintf(out, "serve baseline: clean (tol %.0f%%)\n", tol*100)
		return nil
	}
	if fails := rep.Check(); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(out, "  FAIL %s\n", f)
		}
		return fmt.Errorf("%d serve invariant(s) failed", len(fails))
	}
	return nil
}

// runLeapBench measures the hybrid tau-leap/mean-field engine (full
// consensus runs per protocol × n up to 1e12, plus the exact-engine
// calibration block), optionally records the report as JSON — the procedure
// behind the committed BENCH_leap_baseline.json — and, when a baseline is
// given, fails on any machine-portable regression (convergence, regime
// traces, tick counts, calibration error).
func runLeapBench(out io.Writer, smoke bool, seed uint64, jsonPath, baselinePath string, tol float64) error {
	rep, err := bench.RunLeapBench(bench.LeapBenchConfig{Smoke: smoke, Seed: seed}, out)
	if err != nil {
		return err
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	if baselinePath != "" {
		base, err := bench.LoadLeapBench(baselinePath)
		if err != nil {
			return err
		}
		regs := bench.CompareLeap(rep, base, tol)
		for _, r := range regs {
			fmt.Fprintf(out, "  REGRESSION %s\n", r)
		}
		if len(regs) > 0 {
			return fmt.Errorf("%d leap regression(s) against %s", len(regs), baselinePath)
		}
		fmt.Fprintf(out, "leap baseline: clean (tol %.0f%%)\n", tol*100)
	}
	return nil
}

// sortedKeys returns the map's keys ordered by graph family then numeric n.
// Keys are either plain decimal n values (the clique) or "<family>/<n>"
// (BENCH_scale v2's structured-topology entries); the clique sorts first.
func sortedKeys(m map[string]float64) []string {
	split := func(key string) (string, int64) {
		family, nStr, ok := strings.Cut(key, "/")
		if !ok {
			family, nStr = "", key
		}
		n, _ := strconv.ParseInt(nStr, 10, 64)
		return family, n
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		fi, ni := split(keys[i])
		fj, nj := split(keys[j])
		if fi != fj {
			return fi < fj
		}
		return ni < nj
	})
	return keys
}

// runSchedBench measures the scheduler engines (O(1) Poisson vs the
// O(log n) heap reference vs sequential) and optionally records the report
// as JSON, the procedure that regenerates BENCH_sched.json.
func runSchedBench(out io.Writer, nsCSV string, ticks int64, seed uint64, jsonPath string) error {
	var ns []int
	for _, part := range strings.Split(nsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad -schedbench-n entry %q: %w", part, err)
		}
		if n <= 0 || n > 10_000_000 {
			return fmt.Errorf("-schedbench-n entry %d out of range (0, 1e7]", n)
		}
		ns = append(ns, n)
	}
	rep, err := bench.RunSchedBench(bench.SchedBenchConfig{Ns: ns, Ticks: ticks, Seed: seed}, out)
	if err != nil {
		return err
	}
	for _, n := range ns {
		if speedup, ok := rep.SpeedupAtN[strconv.Itoa(n)]; ok {
			fmt.Fprintf(out, "speedup(poisson vs heap-poisson) at n=%d: %.1fx\n", n, speedup)
		}
	}
	if jsonPath == "" {
		return nil
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
