// Command experiments regenerates the paper-reproduction tables recorded in
// EXPERIMENTS.md. Each experiment ID (e1 … e12) corresponds to one
// quantitative claim of the paper; see DESIGN.md §5 for the mapping.
//
// Examples:
//
//	experiments -list
//	experiments -run e6
//	experiments -run all -quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"plurality/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list  = fs.Bool("list", false, "list all experiments and exit")
		ids   = fs.String("run", "all", "comma-separated experiment IDs (e1..e12) or 'all'")
		quick = fs.Bool("quick", false, "use reduced parameter grids")
		seed  = fs.Uint64("seed", 1, "base random seed")

		schedBench      = fs.Bool("schedbench", false, "benchmark the scheduler engines instead of running experiments")
		schedBenchNs    = fs.String("schedbench-n", "10000,1000000", "comma-separated population sizes for -schedbench (up to 1e7)")
		schedBenchTicks = fs.Int64("schedbench-ticks", 5_000_000, "activations delivered per -schedbench measurement")
		schedBenchOut   = fs.String("schedbench-out", "", "write the -schedbench report as JSON to this file (e.g. BENCH_sched.json)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *schedBench {
		return runSchedBench(out, *schedBenchNs, *schedBenchTicks, *seed, *schedBenchOut)
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(out, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		for _, e := range bench.Ablations() {
			fmt.Fprintf(out, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	var selected []bench.Experiment
	switch *ids {
	case "all":
		selected = bench.All()
	case "ablations":
		selected = bench.Ablations()
	case "everything":
		selected = append(bench.All(), bench.Ablations()...)
	default:
		for _, id := range strings.Split(*ids, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	mode := "full"
	if *quick {
		mode = "quick"
	}
	for _, e := range selected {
		fmt.Fprintf(out, "== %s: %s [%s mode]\n", e.ID, e.Title, mode)
		fmt.Fprintf(out, "claim: %s\n\n", e.Claim)
		start := time.Now()
		if err := e.Run(bench.Config{Out: out, Quick: *quick, Seed: *seed}); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(out, "(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	return nil
}

// runSchedBench measures the scheduler engines (O(1) Poisson vs the
// O(log n) heap reference vs sequential) and optionally records the report
// as JSON, the procedure that regenerates BENCH_sched.json.
func runSchedBench(out io.Writer, nsCSV string, ticks int64, seed uint64, jsonPath string) error {
	var ns []int
	for _, part := range strings.Split(nsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad -schedbench-n entry %q: %w", part, err)
		}
		if n <= 0 || n > 10_000_000 {
			return fmt.Errorf("-schedbench-n entry %d out of range (0, 1e7]", n)
		}
		ns = append(ns, n)
	}
	rep, err := bench.RunSchedBench(bench.SchedBenchConfig{Ns: ns, Ticks: ticks, Seed: seed}, out)
	if err != nil {
		return err
	}
	for _, n := range ns {
		if speedup, ok := rep.SpeedupAtN[strconv.Itoa(n)]; ok {
			fmt.Fprintf(out, "speedup(poisson vs heap-poisson) at n=%d: %.1fx\n", n, speedup)
		}
	}
	if jsonPath == "" {
		return nil
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
