package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"e1", "e6", "e12", "ab1", "ab3"} {
		if !strings.Contains(out, id+" ") && !strings.Contains(out, id+"  ") {
			t.Errorf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "e8", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E8:") || !strings.Contains(out, "shape:") {
		t.Fatalf("output missing table/shape:\n%s", out)
	}
	if !strings.Contains(out, "completed in") {
		t.Fatalf("missing timing footer:\n%s", out)
	}
}

func TestRunMultipleIDs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "e3, e8", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== e3") || !strings.Contains(out, "== e8") {
		t.Fatalf("expected both experiments:\n%s", out)
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "e99"}, &buf); err == nil {
		t.Fatal("unknown ID should fail")
	}
}

func TestRunAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep takes seconds")
	}
	var buf bytes.Buffer
	if err := run([]string{"-run", "ab2", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AB2:") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestSweepList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-sweep", "list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"logn-scaling", "latency", "churn", "topology"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("sweep list missing %s:\n%s", name, buf.String())
		}
	}
}

func TestSweepUnknownName(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-sweep", "warp-drive"}, &buf); err == nil {
		t.Fatal("unknown sweep should fail")
	}
}

// TestSweepSmokeRunAndBaseline drives one named sweep end to end with a
// trial override: artifact written, gates printed, and a self-baseline diff
// that must come back clean.
func TestSweepSmokeRunAndBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	out := dir + "/exp.json"
	var buf bytes.Buffer
	if err := run([]string{"-sweep", "topology", "-smoke", "-trials", "2", "-out", out}, &buf); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "gate all-converged") {
		t.Fatalf("missing gate output:\n%s", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var bundle struct {
		Schema  string `json:"schema"`
		Reports map[string]struct {
			Schema string `json:"schema"`
			Cells  []struct {
				Label string `json:"label"`
			} `json:"cells"`
		} `json:"reports"`
	}
	if err := json.Unmarshal(data, &bundle); err != nil {
		t.Fatalf("invalid bundle: %v\n%s", err, data)
	}
	rep, ok := bundle.Reports["topology"]
	if !ok || len(rep.Cells) != 5 {
		t.Fatalf("bundle: %s", data)
	}

	// The run is deterministic, so diffing against itself must be clean.
	buf.Reset()
	if err := run([]string{"-sweep", "topology", "-smoke", "-trials", "2", "-baseline", out}, &buf); err != nil {
		t.Fatalf("self-baseline diff failed: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "baseline: clean") {
		t.Fatalf("missing clean-baseline line:\n%s", buf.String())
	}
}

func TestSweepBadBaselinePath(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-sweep", "topology", "-baseline", "/nonexistent.json"}, &buf); err == nil {
		t.Fatal("missing baseline file should fail")
	}
}

func TestSchedBenchFlag(t *testing.T) {
	dir := t.TempDir()
	out := dir + "/bench.json"
	var buf bytes.Buffer
	err := run([]string{
		"-schedbench", "-schedbench-n", "1000", "-schedbench-ticks", "200000",
		"-schedbench-out", out,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "poisson") || !strings.Contains(buf.String(), "speedup") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Entries []struct {
			Engine string `json:"engine"`
			N      int    `json:"n"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON report: %v\n%s", err, data)
	}
	if len(rep.Entries) != 6 { // 3 engines x 2 modes at one size
		t.Fatalf("got %d entries, want 6:\n%s", len(rep.Entries), data)
	}
}

func TestSchedBenchBadSize(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-schedbench", "-schedbench-n", "0"}, &buf); err == nil {
		t.Fatal("n=0 should fail")
	}
	if err := run([]string{"-schedbench", "-schedbench-n", "20000001"}, &buf); err == nil {
		t.Fatal("n beyond 1e7 should fail")
	}
}
