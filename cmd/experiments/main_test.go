package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"e1", "e6", "e12", "ab1", "ab3"} {
		if !strings.Contains(out, id+" ") && !strings.Contains(out, id+"  ") {
			t.Errorf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "e8", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E8:") || !strings.Contains(out, "shape:") {
		t.Fatalf("output missing table/shape:\n%s", out)
	}
	if !strings.Contains(out, "completed in") {
		t.Fatalf("missing timing footer:\n%s", out)
	}
}

func TestRunMultipleIDs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "e3, e8", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== e3") || !strings.Contains(out, "== e8") {
		t.Fatalf("expected both experiments:\n%s", out)
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "e99"}, &buf); err == nil {
		t.Fatal("unknown ID should fail")
	}
}

func TestRunAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep takes seconds")
	}
	var buf bytes.Buffer
	if err := run([]string{"-run", "ab2", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AB2:") {
		t.Fatalf("output:\n%s", buf.String())
	}
}
