// Command pluralitynode runs one process of a networked plurality-consensus
// cluster: it binds a TCP listener, hosts its share of the node ids (round
// robin over the mesh), and executes the selected protocol by exchanging
// pull messages with its peer processes until the cluster reaches
// consensus and every local node's termination gadget halts.
//
// Examples:
//
//	pluralitynode -n 64                 # whole cluster in one process
//
//	# two processes sharing one 64-node cluster (run concurrently):
//	pluralitynode -listen 127.0.0.1:9001 -peers 127.0.0.1:9001,127.0.0.1:9002 -n 64
//	pluralitynode -listen 127.0.0.1:9002 -peers 127.0.0.1:9001,127.0.0.1:9002 -n 64
//
// Every process must be started with the same -peers list, -protocol,
// -counts/-n and -seed: the mesh derives node ownership (id mod processes)
// and the deterministic initial opinion blocks from them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"plurality/internal/node"
	"plurality/internal/protocols"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pluralitynode:", err)
		os.Exit(1)
	}
}

// run parses flags, joins the mesh and drives the local nodes to consensus.
func run(ctx context.Context, args []string, out, logw io.Writer) error {
	fs := flag.NewFlagSet("pluralitynode", flag.ContinueOnError)
	fs.SetOutput(logw)
	listen := fs.String("listen", "127.0.0.1:0", "this process's listen address")
	peers := fs.String("peers", "", "comma-separated full mesh address list, identical on every process and containing -listen; empty runs the whole cluster in this process")
	protocol := fs.String("protocol", "two-choices", "registered dynamics protocol (two-choices, voter, 3-majority, usd, j-majority:<j>)")
	n := fs.Int("n", 64, "total nodes in the cluster (all processes combined); ignored when -counts is set")
	countsFlag := fs.String("counts", "", "comma-separated initial opinion counts (e.g. 40,24); default splits -n 60/40")
	seed := fs.Uint64("seed", 1, "deterministic seed shared by every process")
	maxTime := fs.Float64("maxtime", 0, "simulated-time budget (0 = library default)")
	unit := fs.Duration("unit", node.DefaultUnit, "wall-clock duration of one simulated time unit")
	reserve := fs.Bool("reserve-port", false, "bind a free loopback port, print it and exit (for launcher scripts)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *reserve {
		return reservePort(out)
	}

	counts, err := parseCounts(*countsFlag, *n)
	if err != nil {
		return err
	}
	var total int64
	for _, c := range counts {
		total += c
	}

	_, rule, err := protocols.Lookup(*protocol)
	if err != nil {
		return err
	}

	hosts, local, err := meshHosts(*listen, *peers)
	if err != nil {
		return err
	}
	mesh, err := node.NewTCPMesh(hosts, local, int(total), *unit)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "pluralitynode: process %d/%d listening on %s, hosting %d of %d nodes\n",
		local, len(hosts), mesh.Addr(), localCount(int(total), len(hosts), local), total)

	res, err := node.Run(ctx, node.ClusterConfig{
		Rule:    rule,
		Counts:  counts,
		Seed:    *seed,
		MaxTime: *maxTime,
		Network: mesh,
		Local:   func(id int) bool { return id%len(hosts) == local },
	})
	if len(hosts) > 1 {
		// Keep serving pulls until the peers' gadgets halt too; a process
		// that slams its listener shut the moment its own nodes finish
		// would starve the remote tail.
		mesh.Linger(250*time.Millisecond, 10*time.Second)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pluralitynode: consensus winner=%d time=%.3f ticks=%d msgs=%d\n",
		res.Winner, res.ConsensusTime, res.Ticks, res.Messages)
	return nil
}

// reservePort binds an ephemeral loopback port, prints its number and
// releases it — the standard bind-then-close reservation (listeners set
// SO_REUSEADDR, so the caller's immediate rebind succeeds). Launcher
// scripts use it to hand every process the same collision-free -peers list.
func reservePort(out io.Writer) error {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	_, port, err := net.SplitHostPort(l.Addr().String())
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(out, port)
	return err
}

// parseCounts resolves the -counts/-n pair into the initial opinion
// histogram: an explicit comma list wins; otherwise n splits 60/40 into a
// biased two-color instance.
func parseCounts(spec string, n int) ([]int64, error) {
	if spec == "" {
		if n < 2 {
			return nil, fmt.Errorf("-n %d: need at least 2 nodes", n)
		}
		maj := (n*3 + 4) / 5 // 60%, rounded up
		return []int64{int64(maj), int64(n - maj)}, nil
	}
	parts := strings.Split(spec, ",")
	counts := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-counts %q: %w", spec, err)
		}
		counts[i] = v
	}
	return counts, nil
}

// meshHosts resolves the -listen/-peers pair into the ordered mesh list and
// this process's index in it.
func meshHosts(listen, peers string) (hosts []string, local int, err error) {
	if peers == "" {
		return []string{listen}, 0, nil
	}
	for _, h := range strings.Split(peers, ",") {
		hosts = append(hosts, strings.TrimSpace(h))
	}
	for i, h := range hosts {
		if h == listen {
			return hosts, i, nil
		}
	}
	return nil, 0, fmt.Errorf("-listen %s does not appear in -peers %s", listen, peers)
}

// localCount is the number of node ids the round-robin ownership rule
// assigns to process local out of p processes.
func localCount(n, p, local int) int {
	return (n - local + p - 1) / p
}
