// Command plurality runs one plurality-consensus protocol instance and
// reports the outcome as text or JSON. It is a thin front end over the
// library's Job API: the -protocol flag compiles to a plurality.Job, runs
// under a context governed by -timeout, and every protocol — core, onebit,
// synchronous and asynchronous dynamics — supports pooled multi-trial
// execution via -trials.
//
// Examples:
//
//	plurality -protocol core -n 100000 -k 8 -workload biased -bias 0.5
//	plurality -protocol two-choices-sync -n 50000 -k 4 -workload gapsqrt -z 1.5
//	plurality -protocol voter -engine occupancy -n 10000000 -trials 8 -timeout 30s
//	plurality -protocol core -model poisson -delay 1 -trace
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"plurality"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "plurality:", err)
		os.Exit(1)
	}
}

type flags struct {
	protocol      string
	model         string
	engine        string
	topology      string
	workload      string
	listProtocols bool
	listAdvs      bool
	adversary     string
	budget        int64
	n             int
	k             int
	bias          float64
	z             float64
	zipfS         float64
	seed          uint64
	trials        int
	workers       int
	maxTime       float64
	timeout       time.Duration
	delay         float64
	crash         float64
	desyncFrac    float64
	desyncTicks   int
	noGadget      bool
	traceOn       bool
	jsonOut       bool
	leapEps       float64
	odeTheta      float64

	// explicit records which flags the command line actually set, so the
	// Job receives only deliberate options — Job.Validate rejects options
	// the selected protocol ignores, and a default-valued -maxtime must not
	// fail a synchronous run.
	explicit map[string]bool
}

func parseFlags(args []string) (flags, error) {
	var f flags
	fs := flag.NewFlagSet("plurality", flag.ContinueOnError)
	fs.StringVar(&f.protocol, "protocol", "core",
		"protocol: core | onebit | two-choices-sync | any registered dynamic (see -list-protocols), e.g. two-choices-async, voter, 3-majority, usd, j-majority:5")
	fs.BoolVar(&f.listProtocols, "list-protocols", false,
		"list the registered sampling-dynamics protocols and exit")
	fs.BoolVar(&f.listAdvs, "list-adversaries", false,
		"list the registered adversaries and exit")
	fs.StringVar(&f.adversary, "adversary", "",
		"adversary to run under (see -list-adversaries): a name or name:<lag>, e.g. corrupt, byzantine, late:2; needs -budget > 0")
	fs.Int64Var(&f.budget, "budget", 0,
		"adversary budget f: flips per window (corrupt), redirects per window (minority-bias), victim-set size (delay-set, late) or expected liar count (byzantine); 0 disables the adversary")
	fs.StringVar(&f.model, "model", "sequential", "async model: sequential | poisson | heap-poisson")
	fs.StringVar(&f.engine, "engine", "auto",
		"dynamics execution engine: auto | per-node | occupancy (count-collapsed O(k) state) | leap (hybrid tau-leap/mean-field, n >= 1e10; async dynamics only)")
	fs.StringVar(&f.topology, "topology", "complete",
		"communication graph (async dynamics only): complete | cycle | torus | gnp:<p> | random-regular:<d> | annealed:<d> | annealed-gnp:<p>; annealed topologies count-collapse to the degree-class lumped engine")
	fs.StringVar(&f.workload, "workload", "biased",
		"initial distribution: biased | gapsqrt | gapsqrtpolylog | tinygap | uniform | zipf")
	fs.IntVar(&f.n, "n", 100000, "number of nodes")
	fs.IntVar(&f.k, "k", 8, "number of opinions")
	fs.Float64Var(&f.bias, "bias", 0.5, "epsilon for the biased workload: c1 = (1+eps)c2")
	fs.Float64Var(&f.z, "z", 1, "gap multiplier z for the gap workloads")
	fs.Float64Var(&f.zipfS, "zipf-s", 1.1, "zipf exponent for the zipf workload")
	fs.Uint64Var(&f.seed, "seed", 1, "random seed (runs are deterministic per seed)")
	fs.IntVar(&f.trials, "trials", 1, "independent runs with derived seeds, sharded across workers (any protocol)")
	fs.IntVar(&f.workers, "workers", 0, "worker goroutines for -trials (0 = GOMAXPROCS)")
	fs.Float64Var(&f.maxTime, "maxtime", plurality.DefaultMaxTime, "parallel-time budget for async runs")
	fs.DurationVar(&f.timeout, "timeout", 0, "wall-clock budget; the run is canceled mid-simulation when it expires (0 = none)")
	fs.Float64Var(&f.delay, "delay", 0, "response-delay rate theta (>0 enables Exp(theta) delays)")
	fs.Float64Var(&f.crash, "crash", 0, "fraction of nodes that never act (core protocol only)")
	fs.Float64Var(&f.desyncFrac, "desync-frac", 0, "fraction of nodes starting desynchronized (core protocol only)")
	fs.IntVar(&f.desyncTicks, "desync-ticks", 0, "desynchronization spread in ticks (required with -desync-frac)")
	fs.BoolVar(&f.noGadget, "no-gadget", false, "disable the Sync Gadget (ablation; core protocol only)")
	fs.BoolVar(&f.traceOn, "trace", false, "print periodic sync/support probes (core protocol only)")
	fs.BoolVar(&f.jsonOut, "json", false, "emit the result as JSON")
	fs.Float64Var(&f.leapEps, "leap-eps", 0, "leap engine: tau-leap relative error budget per step in (0, 0.5] (0 = default 0.01)")
	fs.Float64Var(&f.odeTheta, "ode-theta", 0, "leap engine: mean-field handoff threshold theta, ODE while buckets >= 1/theta^2 (0 = default 1e-4; negative disables the ODE regime)")
	if err := fs.Parse(args); err != nil {
		return flags{}, err
	}
	f.explicit = make(map[string]bool)
	fs.Visit(func(fl *flag.Flag) { f.explicit[fl.Name] = true })
	return f, nil
}

func makeCounts(f flags) ([]int64, error) {
	switch f.workload {
	case "biased":
		return plurality.Biased(f.n, f.k, f.bias)
	case "gapsqrt":
		return plurality.GapSqrt(f.n, f.k, f.z)
	case "gapsqrtpolylog":
		return plurality.GapSqrtPolylog(f.n, f.k, f.z)
	case "tinygap":
		return plurality.TinyGap(f.n, f.k, f.z)
	case "uniform":
		return plurality.Uniform(f.n, f.k)
	case "zipf":
		return plurality.Zipf(f.n, f.k, f.zipfS)
	default:
		return nil, fmt.Errorf("unknown workload %q", f.workload)
	}
}

// topologyGraph materializes the -topology flag. "" and "complete" return
// nil so the job keeps its implicit clique default (no O(n) graph object).
// Randomized topologies derive a deterministic graph seed from -seed on a
// stream no engine consumes.
func topologyGraph(f flags) (plurality.Graph, error) {
	name, param, hasParam := strings.Cut(f.topology, ":")
	pf := func() (float64, error) {
		if !hasParam {
			return 0, fmt.Errorf("topology %q needs a parameter", f.topology)
		}
		return strconv.ParseFloat(param, 64)
	}
	pd := func() (int, error) {
		if !hasParam {
			return 0, fmt.Errorf("topology %q needs a degree", f.topology)
		}
		return strconv.Atoi(param)
	}
	graphSeed := plurality.TrialSeed(f.seed, 1<<10)
	switch name {
	case "", "complete":
		return nil, nil
	case "cycle":
		return plurality.CycleGraph(f.n)
	case "torus":
		side := int(math.Round(math.Sqrt(float64(f.n))))
		if side*side != f.n {
			return nil, fmt.Errorf("topology torus needs a square n, got %d", f.n)
		}
		return plurality.TorusGraph(side, side)
	case "gnp":
		p, err := pf()
		if err != nil {
			return nil, err
		}
		return plurality.RandomGraph(f.n, p, graphSeed)
	case "random-regular":
		d, err := pd()
		if err != nil {
			return nil, err
		}
		return plurality.RandomRegularGraph(f.n, d, graphSeed)
	case "annealed":
		d, err := pd()
		if err != nil {
			return nil, err
		}
		return plurality.AnnealedRegularGraph(f.n, d)
	case "annealed-gnp":
		p, err := pf()
		if err != nil {
			return nil, err
		}
		g, err := plurality.RandomGraph(f.n, p, graphSeed)
		if err != nil {
			return nil, err
		}
		return plurality.AnnealedGraph(g)
	default:
		return nil, fmt.Errorf("unknown topology %q", f.topology)
	}
}

// jobSpec maps the -protocol flag onto a Job protocol spec plus any options
// the spelling implies ("two-choices-sync" selects the synchronous model;
// the historical "-async" suffix is trimmed).
func jobSpec(protocol string) (spec string, implied []plurality.Option) {
	switch protocol {
	case "core", "onebit":
		return protocol, nil
	case "two-choices-sync":
		return "two-choices", []plurality.Option{plurality.WithModel(plurality.Synchronous)}
	}
	return strings.TrimSuffix(protocol, "-async"), nil
}

// jobOptions assembles the option list from the explicitly set flags; see
// flags.explicit.
func jobOptions(f flags, out io.Writer) ([]plurality.Option, error) {
	opts := []plurality.Option{plurality.WithSeed(f.seed)}
	if f.explicit["maxtime"] {
		opts = append(opts, plurality.WithMaxTime(f.maxTime))
	}
	if f.explicit["model"] {
		switch f.model {
		case "sequential":
			opts = append(opts, plurality.WithModel(plurality.Sequential))
		case "poisson":
			opts = append(opts, plurality.WithModel(plurality.Poisson))
		case "heap-poisson":
			opts = append(opts, plurality.WithModel(plurality.HeapPoisson))
		default:
			return nil, fmt.Errorf("unknown model %q", f.model)
		}
	}
	switch f.engine {
	case "", "auto":
	case "per-node":
		// The protocols with a single execution strategy (core, the
		// synchronous runners) always run per node; keep the redundant
		// spelling accepted, as it always has been, instead of letting the
		// strict Job validation reject the no-op option.
		switch f.protocol {
		case "core", "onebit", "two-choices-sync":
		default:
			opts = append(opts, plurality.WithEngine(plurality.EnginePerNode))
		}
	case "occupancy":
		opts = append(opts, plurality.WithEngine(plurality.EngineOccupancy))
	case "leap":
		opts = append(opts, plurality.WithEngine(plurality.EngineLeap))
	default:
		return nil, fmt.Errorf("unknown engine %q", f.engine)
	}
	if g, err := topologyGraph(f); err != nil {
		return nil, err
	} else if g != nil {
		opts = append(opts, plurality.WithGraph(g))
	}
	if f.explicit["leap-eps"] {
		opts = append(opts, plurality.WithLeapEpsilon(f.leapEps))
	}
	if f.explicit["ode-theta"] {
		theta := f.odeTheta
		if theta < 0 {
			theta = 0 // WithODEThreshold's "disable" spelling
		}
		opts = append(opts, plurality.WithODEThreshold(theta))
	}
	if f.workers != 0 {
		opts = append(opts, plurality.WithTrialWorkers(f.workers))
	}
	if f.delay > 0 {
		opts = append(opts, plurality.WithResponseDelay(f.delay))
	}
	if f.crash > 0 {
		opts = append(opts, plurality.WithCrashes(f.crash))
	}
	if f.desyncFrac > 0 || f.explicit["desync-ticks"] {
		opts = append(opts, plurality.WithDesync(f.desyncFrac, f.desyncTicks))
	}
	if f.noGadget {
		opts = append(opts, plurality.WithoutSyncGadget())
	}
	if f.adversary != "" || f.budget != 0 {
		spec, err := plurality.ParseAdversary(f.adversary)
		if err != nil {
			return nil, err
		}
		if f.budget > 0 && spec.Name == "" {
			return nil, fmt.Errorf("-budget %d set with no -adversary to spend it", f.budget)
		}
		spec.Budget = f.budget
		if spec.Active() {
			opts = append(opts, plurality.WithAdversary(spec))
		}
	}
	if f.traceOn {
		opts = append(opts, plurality.WithProbe(10, func(p plurality.CoreProbe) {
			fmt.Fprintf(out, "t=%8.1f plurality=%.3f spread90=%-5d poorly-synced=%d/%d halted=%d\n",
				p.Time, p.PluralityFraction, p.Spread90, p.PoorlySynced, p.Active, p.Halted)
		}))
	}
	return opts, nil
}

// trialsOutcome is the JSON-friendly aggregate over a multi-trial run.
type trialsOutcome struct {
	Protocol            string  `json:"protocol"`
	N                   int     `json:"n"`
	K                   int     `json:"k"`
	Trials              int     `json:"trials"`
	PluralityWins       int     `json:"pluralityWins"`
	AllDone             bool    `json:"allDone"`
	MedianTime          float64 `json:"medianTime"`
	MedianConsensusTime float64 `json:"medianConsensusTime"`
	MedianRounds        float64 `json:"medianRounds,omitempty"`
	TotalTicks          int64   `json:"totalTicks"`
	Corruptions         int64   `json:"corruptions,omitempty"`
	Biased              int64   `json:"biased,omitempty"`
}

// runTrials executes the pooled multi-trial driver — Job.Trials, so every
// protocol and engine is supported — and prints the aggregate.
func runTrials(ctx context.Context, f flags, job *plurality.Job, out io.Writer) error {
	results, err := job.Trials(ctx, f.trials)
	if err != nil && !errors.Is(err, plurality.ErrNoConsensus) && !errors.Is(err, plurality.ErrTimeLimit) && !errors.Is(err, plurality.ErrPhaseLimit) {
		return err
	}
	// Trials that exhausted their budget still produced reports; fold them
	// into the aggregate (allDone=false) rather than discarding the
	// successful trials.
	agg := trialsOutcome{Protocol: f.protocol, N: f.n, K: f.k, Trials: f.trials, AllDone: true}
	times := make([]float64, 0, len(results))
	ctimes := make([]float64, 0, len(results))
	rounds := make([]float64, 0, len(results))
	for _, r := range results {
		if r.Converged && r.Winner == 0 {
			agg.PluralityWins++
		}
		agg.AllDone = agg.AllDone && r.Converged
		agg.TotalTicks += r.Ticks
		agg.Corruptions += r.Corruptions
		agg.Biased += r.Biased
		times = append(times, r.Time)
		ctimes = append(ctimes, r.ConsensusTime)
		rounds = append(rounds, float64(r.Rounds))
	}
	sort.Float64s(times)
	sort.Float64s(ctimes)
	sort.Float64s(rounds)
	agg.MedianTime = times[len(times)/2]
	agg.MedianConsensusTime = ctimes[len(ctimes)/2]
	agg.MedianRounds = rounds[len(rounds)/2]

	if f.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(agg)
	}
	fmt.Fprintf(out, "protocol=%s n=%d k=%d trials=%d pluralityWins=%d/%d allDone=%v\n",
		agg.Protocol, agg.N, agg.K, agg.Trials, agg.PluralityWins, agg.Trials, agg.AllDone)
	fmt.Fprintf(out, "medianTime=%.1f medianConsensusTime=%.1f totalTicks=%d\n",
		agg.MedianTime, agg.MedianConsensusTime, agg.TotalTicks)
	if agg.MedianRounds > 0 {
		fmt.Fprintf(out, "medianRounds=%.0f\n", agg.MedianRounds)
	}
	return nil
}

// outcome is the unified, JSON-friendly run report.
type outcome struct {
	Protocol      string  `json:"protocol"`
	N             int     `json:"n"`
	K             int     `json:"k"`
	Done          bool    `json:"done"`
	Winner        int32   `json:"winner"`
	PluralityWon  bool    `json:"pluralityWon"`
	Time          float64 `json:"time,omitempty"`
	Rounds        int     `json:"rounds,omitempty"`
	Ticks         int64   `json:"ticks,omitempty"`
	ConsensusTime float64 `json:"consensusTime,omitempty"`
	EndgameSafe   bool    `json:"endgameSafe,omitempty"`
	Jumps         int64   `json:"jumps,omitempty"`
	Phases        int     `json:"phases,omitempty"`
	Undecided     int64   `json:"undecided,omitempty"`
	Corruptions   int64   `json:"corruptions,omitempty"`
	Biased        int64   `json:"biased,omitempty"`
}

// listAdversaries prints the registry-driven adversary listing, mirroring
// listProtocols.
func listAdversaries(out io.Writer) error {
	fmt.Fprintf(out, "%-16s %-11s %-8s %s\n", "ADVERSARY", "FAMILY", "PER-NODE", "BEHAVIOR")
	for _, d := range plurality.Adversaries() {
		name := d.Name
		if d.NeedsLag {
			name += ":<lag>"
		}
		perNode := "-"
		if d.PerNode {
			perNode = "yes"
		}
		fmt.Fprintf(out, "%-16s %-11s %-8s %s\n", name, d.Family, perNode, d.Summary)
		if len(d.Aliases) > 0 {
			fmt.Fprintf(out, "%-16s %-11s %-8s   aliases: %s\n", "", "", "", strings.Join(d.Aliases, ", "))
		}
		fmt.Fprintf(out, "%-16s %-11s %-8s   source: %s\n", "", "", "", d.Source)
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "budget f is set with -budget; per-node adversaries need the per-node engine")
	return nil
}

// listProtocols prints the registry-driven protocol listing.
func listProtocols(out io.Writer) error {
	fmt.Fprintf(out, "%-18s %-8s %-10s %s\n", "PROTOCOL", "SAMPLES", "PLURALITY", "RULE")
	for _, d := range plurality.Protocols() {
		name := d.Name
		if d.ParamName != "" {
			name += ":<" + d.ParamName + ">"
		}
		plur := "-"
		if d.PluralityWins {
			plur = "yes"
		}
		fmt.Fprintf(out, "%-18s %-8s %-10s %s\n", name, d.Samples, plur, d.Summary)
		if d.Param != "" {
			fmt.Fprintf(out, "%-18s %-8s %-10s   param: %s\n", "", "", "", d.Param)
		}
		fmt.Fprintf(out, "%-18s %-8s %-10s   source: %s\n", "", "", "", d.Source)
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "dedicated runners: core (Theorem 1.3), onebit (Theorem 1.2), two-choices-sync (synchronous engine)")
	return nil
}

func run(args []string, out io.Writer) error {
	f, err := parseFlags(args)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if f.listProtocols {
		return listProtocols(out)
	}
	if f.listAdvs {
		return listAdversaries(out)
	}
	counts, err := makeCounts(f)
	if err != nil {
		return err
	}
	opts, err := jobOptions(f, out)
	if err != nil {
		return err
	}
	spec, implied := jobSpec(f.protocol)
	job, err := plurality.NewJob(spec, counts, append(opts, implied...)...)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if f.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.timeout)
		defer cancel()
	}

	if f.trials > 1 {
		if f.traceOn {
			// Trials run concurrently; interleaved, unattributed probe
			// lines (and concurrent writes to out) would be useless.
			return fmt.Errorf("-trace is not supported with -trials > 1")
		}
		return runTrials(ctx, f, job, out)
	}

	rep, err := job.Run(ctx)
	if err != nil {
		return err
	}
	o := outcome{
		Protocol:  f.protocol,
		N:         f.n,
		K:         f.k,
		Done:      rep.Converged,
		Winner:    int32(rep.Winner),
		Rounds:    rep.Rounds,
		Ticks:     rep.Ticks,
		Undecided: rep.Undecided,
	}
	o.Corruptions = rep.Corruptions
	o.Biased = rep.Biased
	switch rep.Kind {
	case plurality.KindCore:
		res, _ := rep.Core()
		o.Time = res.Time
		o.ConsensusTime = res.ConsensusTime
		o.EndgameSafe = res.EndgameSafe
		o.Jumps = res.Jumps
		o.Undecided = 0
	case plurality.KindDynamic:
		o.Time = rep.Time
	case plurality.KindOneExtraBit:
		res, _ := rep.Phases()
		o.Phases = res.Phases
	}
	o.PluralityWon = o.Done && o.Winner == 0

	if f.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(o)
	}
	fmt.Fprintf(out, "protocol=%s n=%d k=%d done=%v winner=C%d pluralityWon=%v\n",
		o.Protocol, o.N, o.K, o.Done, o.Winner, o.PluralityWon)
	if o.Rounds > 0 {
		fmt.Fprintf(out, "rounds=%d", o.Rounds)
		if o.Phases > 0 {
			fmt.Fprintf(out, " phases=%d", o.Phases)
		}
		fmt.Fprintln(out)
	}
	if o.Time > 0 {
		fmt.Fprintf(out, "time=%.1f ticks=%d", o.Time, o.Ticks)
		if o.ConsensusTime > 0 {
			fmt.Fprintf(out, " consensusTime=%.1f jumps=%d endgameSafe=%v",
				o.ConsensusTime, o.Jumps, o.EndgameSafe)
		}
		fmt.Fprintln(out)
	}
	if o.Corruptions > 0 || o.Biased > 0 {
		fmt.Fprintf(out, "corruptions=%d biased=%d\n", o.Corruptions, o.Biased)
	}
	return nil
}
