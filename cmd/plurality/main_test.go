package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunCoreText(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-protocol", "core", "-n", "2000", "-k", "4",
		"-workload", "biased", "-bias", "1", "-seed", "3",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "done=true") || !strings.Contains(out, "pluralityWon=true") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if !strings.Contains(out, "consensusTime=") {
		t.Fatalf("missing core metrics:\n%s", out)
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-protocol", "two-choices-sync", "-n", "2000", "-k", "2",
		"-workload", "gapsqrt", "-z", "2", "-seed", "4", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var o outcome
	if err := json.Unmarshal(buf.Bytes(), &o); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if !o.Done || o.Protocol != "two-choices-sync" || o.Rounds <= 0 {
		t.Fatalf("outcome = %+v", o)
	}
}

func TestRunAllProtocols(t *testing.T) {
	protocols := []string{
		"core", "two-choices-sync", "two-choices-async",
		"onebit", "voter", "3-majority",
		"two-choices", "usd", "undecided-state", "j-majority:5", "j-majority:1",
	}
	for _, p := range protocols {
		p := p
		t.Run(p, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			err := run([]string{
				"-protocol", p, "-n", "1500", "-k", "3",
				"-workload", "biased", "-bias", "1", "-seed", "5",
			}, &buf)
			if err != nil {
				t.Fatalf("%s: %v", p, err)
			}
			if !strings.Contains(buf.String(), "done=true") {
				t.Fatalf("%s did not converge:\n%s", p, buf.String())
			}
		})
	}
}

func TestRunWorkloads(t *testing.T) {
	for _, w := range []string{"biased", "gapsqrt", "gapsqrtpolylog", "tinygap", "uniform", "zipf"} {
		var buf bytes.Buffer
		err := run([]string{
			"-protocol", "voter", "-n", "500", "-k", "3",
			"-workload", w, "-seed", "6", "-maxtime", "1000000",
		}, &buf)
		if err != nil {
			t.Fatalf("workload %s: %v", w, err)
		}
	}
}

func TestRunPoissonModelAndDelay(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-protocol", "core", "-n", "1500", "-k", "3", "-workload", "biased",
		"-bias", "1", "-model", "poisson", "-delay", "1", "-seed", "7",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "done=true") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunTraceFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-protocol", "core", "-n", "1500", "-k", "3", "-workload", "biased",
		"-bias", "1", "-trace", "-seed", "8",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "plurality=") {
		t.Fatalf("trace lines missing:\n%s", buf.String())
	}
}

func TestRunFailureInjectionFlags(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-protocol", "core", "-n", "2000", "-k", "3", "-workload", "biased",
		"-bias", "1", "-seed", "9",
		"-crash", "0.01", "-desync-frac", "0.02", "-desync-ticks", "200",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "done=true") {
		t.Fatalf("output:\n%s", buf.String())
	}
	// Desync without spread must be rejected by the library validation.
	if err := run([]string{
		"-protocol", "core", "-n", "2000", "-k", "3",
		"-desync-frac", "0.02",
	}, &buf); err == nil {
		t.Error("desync-frac without desync-ticks should fail")
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad protocol", args: []string{"-protocol", "nope", "-n", "100"}},
		{name: "bad workload", args: []string{"-workload", "nope", "-n", "100"}},
		{name: "bad model", args: []string{"-model", "nope", "-n", "100"}},
		{name: "tiny n", args: []string{"-n", "1"}},
		{name: "j-majority without j", args: []string{"-protocol", "j-majority", "-n", "100"}},
		{name: "j-majority bad j", args: []string{"-protocol", "j-majority:x", "-n", "100"}},
		{name: "occupancy core", args: []string{"-protocol", "core", "-engine", "occupancy", "-n", "100"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tt.args, &buf); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestRunTrialsFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-protocol", "core", "-n", "1500", "-k", "3",
		"-workload", "biased", "-bias", "1", "-seed", "5",
		"-trials", "4", "-workers", "2", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var o trialsOutcome
	if err := json.Unmarshal(buf.Bytes(), &o); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if o.Trials != 4 || !o.AllDone || o.PluralityWins < 3 {
		t.Fatalf("unexpected aggregate: %+v", o)
	}
}

// TestListProtocolsFlag: the -list-protocols listing is registry-driven —
// every registered family must appear, parameter and source included.
func TestListProtocolsFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list-protocols"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"two-choices", "voter", "3-majority", "usd", "j-majority:<j>",
		"param:", "source:", "core (Theorem 1.3)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}

// TestRunUSDOccupancyEngine: a registry protocol composes with -engine
// occupancy, including USD's hidden undecided bucket.
func TestRunUSDOccupancyEngine(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-protocol", "usd", "-engine", "occupancy", "-model", "poisson",
		"-n", "5000", "-k", "4", "-workload", "biased", "-bias", "1", "-seed", "7",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "done=true") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

// TestRunTrialsEveryProtocol: -trials rides on Job.Trials, so pooled
// multi-trial execution works for every protocol family, not just core.
func TestRunTrialsEveryProtocol(t *testing.T) {
	for _, p := range []string{"voter", "two-choices-sync", "onebit", "usd"} {
		p := p
		t.Run(p, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			err := run([]string{
				"-protocol", p, "-n", "800", "-k", "3", "-workload", "biased",
				"-bias", "1", "-seed", "5", "-trials", "3", "-workers", "2", "-json",
			}, &buf)
			if err != nil {
				t.Fatal(err)
			}
			var o trialsOutcome
			if err := json.Unmarshal(buf.Bytes(), &o); err != nil {
				t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
			}
			if o.Trials != 3 || !o.AllDone {
				t.Fatalf("unexpected aggregate: %+v", o)
			}
		})
	}
}

// TestRunTimeoutFlag: an expiring -timeout cancels the simulation
// mid-flight and surfaces as an error instead of hanging.
func TestRunTimeoutFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-protocol", "voter", "-engine", "per-node", "-n", "200000", "-k", "2",
		"-workload", "uniform", "-maxtime", "1000000000", "-timeout", "50ms",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want deadline error, got %v", err)
	}
}

func TestRunHeapPoissonModel(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-protocol", "core", "-n", "1000", "-k", "2",
		"-workload", "biased", "-bias", "1", "-model", "heap-poisson", "-seed", "6",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "done=true") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestRunTrialsRejectsTrace(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-protocol", "core", "-n", "1000", "-trials", "2", "-trace"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "-trace") {
		t.Fatalf("want trace-with-trials error, got %v", err)
	}
}

func TestRunTrialsReportsNoConsensusAggregate(t *testing.T) {
	var buf bytes.Buffer
	// A budget far too small for consensus: the aggregate must still be
	// printed, with allDone=false, instead of discarding all trials.
	err := run([]string{
		"-protocol", "core", "-n", "2000", "-k", "4",
		"-workload", "biased", "-bias", "1", "-seed", "8",
		"-trials", "3", "-maxtime", "1", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var o trialsOutcome
	if err := json.Unmarshal(buf.Bytes(), &o); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if o.AllDone || o.Trials != 3 {
		t.Fatalf("unexpected aggregate: %+v", o)
	}
}

// TestRunCorePerNodeEngineAccepted: the redundant -engine per-node spelling
// on protocols that always run per node stays accepted, as it has been
// since the flag was introduced.
func TestRunCorePerNodeEngineAccepted(t *testing.T) {
	for _, p := range []string{"core", "onebit", "two-choices-sync"} {
		var buf bytes.Buffer
		err := run([]string{
			"-protocol", p, "-engine", "per-node", "-n", "1000", "-k", "2",
			"-workload", "biased", "-bias", "1", "-seed", "3",
		}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

// TestRunTopologyFlag: -topology materializes the communication graph —
// quenched families run per node, annealed families count-collapse to the
// degree-class lumped engine (and so compose with -engine occupancy).
func TestRunTopologyFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-protocol", "two-choices", "-model", "poisson", "-topology", "random-regular:8",
		"-n", "1000", "-k", "3", "-workload", "biased", "-bias", "1", "-seed", "5",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "done=true") {
		t.Fatalf("quenched run output:\n%s", buf.String())
	}
	buf.Reset()
	err = run([]string{
		"-protocol", "two-choices", "-model", "poisson", "-engine", "occupancy",
		"-topology", "annealed:8", "-n", "100000", "-k", "4",
		"-workload", "biased", "-bias", "1", "-seed", "6",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "done=true") {
		t.Fatalf("lumped run output:\n%s", buf.String())
	}
}

func TestRunTopologyErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "unknown topology", args: []string{"-protocol", "voter", "-topology", "hypercube", "-n", "100"}},
		{name: "gnp without p", args: []string{"-protocol", "voter", "-topology", "gnp", "-n", "100"}},
		{name: "bad degree", args: []string{"-protocol", "voter", "-topology", "annealed:x", "-n", "100"}},
		{name: "non-square torus", args: []string{"-protocol", "voter", "-topology", "torus", "-n", "60"}},
		{name: "occupancy on quenched", args: []string{"-protocol", "voter", "-engine", "occupancy", "-topology", "cycle", "-n", "100"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tt.args, &buf); err == nil {
				t.Error("want error")
			}
		})
	}
}

// TestRunWorkersFlagApplied: -workers must be translated into a
// WithTrialWorkers option (a silently dropped flag cannot be caught by the
// determinism checks, since results are worker-count independent by
// design). With only -workers set, the built options are exactly WithSeed
// plus WithTrialWorkers.
func TestRunWorkersFlagApplied(t *testing.T) {
	f, err := parseFlags([]string{"-workers", "3"})
	if err != nil {
		t.Fatal(err)
	}
	opts, err := jobOptions(f, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 2 {
		t.Fatalf("built %d options, want 2 (seed + trial workers)", len(opts))
	}
}
