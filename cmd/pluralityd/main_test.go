package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"plurality/internal/service"
)

// startDaemon runs serve on an ephemeral port and returns its base URL plus
// a shutdown trigger and completion channel.
func startDaemon(t *testing.T) (string, context.CancelFunc, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	cfg := service.Config{Workers: 2, QueueDepth: 8, Logger: logger}
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, cfg, logger, 2*time.Second) }()
	return "http://" + ln.Addr().String(), cancel, done
}

// TestServeLifecycle boots the daemon, runs a deterministic job end to end
// with a cached replay, and shuts down gracefully.
func TestServeLifecycle(t *testing.T) {
	url, cancel, done := startDaemon(t)
	defer cancel()

	// Liveness.
	var resp *http.Response
	var err error
	for i := 0; i < 100; i++ {
		resp, err = http.Get(url + "/v1/healthz")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	// Submit a fast deterministic job and wait for it.
	spec := `{"protocol":"two-choices","counts":[60000,40000],"engine":"occupancy","seed":3}`
	resp, err = http.Post(url+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	var terminal []byte
	for {
		resp, err := http.Get(url + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		terminal, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(terminal, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "canceled" || time.Now().After(deadline) {
			t.Fatalf("job did not complete: %s", terminal)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Cached replay over the real wire is byte-identical.
	resp, err = http.Post(url+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	cached, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("replay: status %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(cached, terminal) {
		t.Fatalf("cached body differs:\n%s\nvs\n%s", cached, terminal)
	}

	// Graceful shutdown completes promptly.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestRunFlagErrors: bad flags and unusable addresses surface as errors,
// not hangs.
func TestRunFlagErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, io.Discard); err == nil {
		t.Error("unusable address accepted")
	}
	// -h prints usage and exits clean.
	if err := run(context.Background(), []string{"-h"}, io.Discard); err != nil {
		t.Errorf("-h: %v", err)
	}
}
