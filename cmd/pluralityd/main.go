// Command pluralityd serves plurality-consensus simulations over HTTP:
// consensus as a service on top of the library's Job API. Clients POST JSON
// job specs, poll or stream their progress, and re-submissions of an
// identical deterministic spec replay the cached report byte-for-byte. See
// docs/API.md for the full contract.
//
// Examples:
//
//	pluralityd                          # listen on :8080 with defaults
//	pluralityd -addr 127.0.0.1:9090 -workers 8 -queue 128 -cache 512
//	curl -s localhost:8080/v1/jobs -d '{"protocol":"two-choices","counts":[600000,400000],"engine":"occupancy"}'
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight HTTP requests drain, and every queued or running job is
// canceled through its context.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"plurality/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pluralityd:", err)
		os.Exit(1)
	}
}

// run parses flags, binds the listener and serves until ctx is canceled.
func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("pluralityd", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "execution pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "pending-job queue depth; beyond it submissions get 429 + Retry-After")
	cache := fs.Int("cache", 256, "completed-report LRU size in entries (negative disables caching)")
	grace := fs.Duration("grace", 5*time.Second, "graceful-shutdown drain budget")
	jsonLog := fs.Bool("log-json", false, "log as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	var handler slog.Handler
	if *jsonLog {
		handler = slog.NewJSONHandler(logw, nil)
	} else {
		handler = slog.NewTextHandler(logw, nil)
	}
	logger := slog.New(handler)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	cfg := service.Config{Workers: *workers, QueueDepth: *queue, CacheSize: *cache, Logger: logger}
	return serve(ctx, ln, cfg, logger, *grace)
}

// serve runs the daemon on ln until ctx is canceled, then drains HTTP
// handlers within grace and cancels every queued and running job.
func serve(ctx context.Context, ln net.Listener, cfg service.Config, logger *slog.Logger, grace time.Duration) error {
	svc := service.New(cfg)
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Info("pluralityd listening", "addr", ln.Addr().String())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	logger.Info("pluralityd shutting down", "grace", grace.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Drain budget exhausted (e.g. an SSE client still attached): close
		// the remaining connections hard.
		srv.Close()
	}
	svc.Close()
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
