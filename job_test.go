package plurality

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// jobConfigs enumerates one Job configuration per runner family × engine
// path: every registry protocol on the population path and on the
// count-collapsed counts path, plus the synchronous model, core and
// OneExtraBit. The returned options always pin the seed.
func jobConfigs(t *testing.T, n, k int) []struct {
	name string
	spec string
	opts []Option
} {
	t.Helper()
	var cfgs []struct {
		name string
		spec string
		opts []Option
	}
	add := func(name, spec string, opts ...Option) {
		cfgs = append(cfgs, struct {
			name string
			spec string
			opts []Option
		}{name, spec, append([]Option{WithSeed(11)}, opts...)})
	}
	for _, d := range Protocols() {
		spec := d.RaceSpec
		add(spec+"/population", spec)
		add(spec+"/counts", spec, WithEngine(EngineOccupancy))
	}
	add("two-choices/sync", "two-choices", WithModel(Synchronous))
	add("core", "core")
	add("onebit", "onebit", WithMaxPhases(50))
	return cfgs
}

// flatReport strips the unexported detail pointers so reports can be
// compared with ==; the typed detail is compared separately.
type flatReport struct {
	rep    Report
	core   CoreResult
	onebit OneExtraBitResult
}

func flatten(rep Report) flatReport {
	f := flatReport{rep: rep}
	f.rep.core, f.rep.onebit = nil, nil
	f.core, _ = rep.Core()
	f.onebit, _ = rep.Phases()
	return f
}

// TestJobTrialsDeterministicAcrossWorkers: for every registered protocol on
// both the population and the counts path (plus core, sync and onebit),
// Job.Trials must be a pure function of (job, trials) — the worker count
// only changes wall-clock time, never results — and trial 0 must be
// bit-identical to Job.Run.
func TestJobTrialsDeterministicAcrossWorkers(t *testing.T) {
	counts, err := Biased(300, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const trials = 5
	for _, cfg := range jobConfigs(t, 300, 3) {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			job, err := NewJob(cfg.spec, counts, cfg.opts...)
			if err != nil {
				t.Fatal(err)
			}
			run := func(workers int) []Report {
				j, err := NewJob(cfg.spec, counts, append(cfg.opts, WithTrialWorkers(workers))...)
				if err != nil {
					t.Fatal(err)
				}
				res, err := j.Trials(ctx, trials)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return res
			}
			serial := run(1)
			for workers := 2; workers <= 8; workers++ {
				parallel := run(workers)
				for i := range serial {
					if flatten(serial[i]) != flatten(parallel[i]) {
						t.Fatalf("workers=%d trial %d: %+v != %+v", workers, i, parallel[i], serial[i])
					}
				}
			}

			// Trial 0 keeps the base seed: a 1-trial run is exactly Run.
			single, err := job.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if flatten(serial[0]) != flatten(single) {
				t.Fatalf("trial 0 %+v != Run %+v", serial[0], single)
			}

			// Distinct trials must use decorrelated streams.
			allSame := true
			for i := 1; i < trials; i++ {
				if flatten(serial[i]) != flatten(serial[0]) {
					allSame = false
				}
			}
			if allSame {
				t.Error("all trials produced identical results; per-trial seeds look correlated")
			}
		})
	}
}

// TestTrialSeedStreamsPairwiseDistinct: the per-trial seed derivation must
// produce pairwise distinct streams over a large trial range (a collision
// would silently correlate two trials).
func TestTrialSeedStreamsPairwiseDistinct(t *testing.T) {
	const trials = 10_000
	for _, base := range []uint64{0, 1, 42, 1 << 63} {
		seen := make(map[uint64]int, trials)
		for i := 0; i < trials; i++ {
			s := TrialSeed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("base %d: TrialSeed collision between trials %d and %d (seed %d)", base, prev, i, s)
			}
			seen[s] = i
		}
	}
}

// TestJobRunCanceledContextReturnsPromptly: an already-canceled context
// must abort every engine — core, per-node dynamics, the count-collapsed
// occupancy engine, the synchronous round loop, OneExtraBit — essentially
// immediately even at n = 10⁶, and surface as context.Canceled.
func TestJobRunCanceledContextReturnsPromptly(t *testing.T) {
	const n = 1_000_000
	counts, err := Biased(n, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name string
		spec string
		opts []Option
	}{
		{name: "core", spec: "core"},
		{name: "per-node", spec: "two-choices", opts: []Option{WithEngine(EnginePerNode)}},
		{name: "occupancy", spec: "voter", opts: []Option{WithEngine(EngineOccupancy)}},
		{name: "sync", spec: "two-choices", opts: []Option{WithModel(Synchronous)}},
		{name: "onebit", spec: "onebit", opts: []Option{WithMaxPhases(1000)}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			job, err := NewJob(tc.spec, counts, append([]Option{WithSeed(3)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			rep, err := job.Run(ctx)
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if rep.Converged {
				t.Fatalf("run converged despite cancellation: %+v", rep)
			}
			if rep.Protocol != tc.spec {
				t.Fatalf("Protocol = %q, want %q", rep.Protocol, tc.spec)
			}
			// Generous bound: state setup is O(n) but simulation work — the
			// part cancellation must skip — would take far longer.
			if elapsed > 5*time.Second {
				t.Fatalf("cancellation took %v, want prompt return", elapsed)
			}
		})
	}
}

// TestJobDeadlineInterruptsLongRun: a deadline that expires mid-run stops
// the engine and reports progress so far.
func TestJobDeadlineInterruptsLongRun(t *testing.T) {
	counts, err := Uniform(200_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Voter on a near-tied workload needs ~n parallel time; a few
	// milliseconds of deadline interrupts it mid-flight.
	job, err := NewJob("voter", counts, WithSeed(1), WithEngine(EnginePerNode), WithMaxTime(1e9))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	rep, err := job.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if rep.Ticks == 0 {
		t.Fatal("no progress recorded before the deadline")
	}
}

// TestJobValidateRejectsIgnoredOptions: options the selected runner would
// silently drop are compile-time (NewJob-time) errors naming the offending
// constructor.
func TestJobValidateRejectsIgnoredOptions(t *testing.T) {
	counts, err := Biased(1000, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		spec string
		opts []Option
		want string // substring of the error
	}{
		{name: "core rejects WithMaxRounds", spec: "core",
			opts: []Option{WithMaxRounds(5)}, want: "WithMaxRounds"},
		{name: "core rejects WithMaxPhases", spec: "core",
			opts: []Option{WithMaxPhases(2)}, want: "WithMaxPhases"},
		{name: "core rejects WithEngine", spec: "core",
			opts: []Option{WithEngine(EngineOccupancy)}, want: "WithEngine"},
		{name: "dynamic rejects WithProbe", spec: "voter",
			opts: []Option{WithProbe(1, func(CoreProbe) {})}, want: "WithProbe"},
		{name: "dynamic rejects core schedule overrides", spec: "two-choices",
			opts: []Option{WithDelta(5)}, want: "WithDelta"},
		{name: "counts path rejects WithResponseDelay", spec: "voter",
			opts: []Option{WithEngine(EngineOccupancy), WithResponseDelay(1)}, want: "WithResponseDelay"},
		{name: "counts path rejects WithEdgeLatency", spec: "voter",
			opts: []Option{WithEngine(EngineOccupancy), WithEdgeLatency(ExpEdgeLatency(1))}, want: "WithEdgeLatency"},
		{name: "sync rejects WithMaxTime", spec: "usd",
			opts: []Option{WithModel(Synchronous), WithMaxTime(10)}, want: "WithMaxTime"},
		{name: "sync rejects WithEngine", spec: "usd",
			opts: []Option{WithModel(Synchronous), WithEngine(EngineOccupancy)}, want: "WithEngine"},
		{name: "onebit rejects WithModel", spec: "onebit",
			opts: []Option{WithModel(Poisson)}, want: "WithModel"},
		{name: "onebit rejects WithChurn", spec: "onebit",
			opts: []Option{WithChurn(0.001)}, want: "WithChurn"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewJob(tc.spec, counts, tc.opts...)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %s", err, tc.want)
			}
		})
	}
}

// TestJobValidateEager: unknown protocols, bad parameters, malformed counts
// and model/engine mismatches fail at NewJob, before anything runs.
func TestJobValidateEager(t *testing.T) {
	good, err := Biased(1000, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name   string
		spec   string
		counts []int64
		opts   []Option
	}{
		{name: "unknown protocol", spec: "nope", counts: good},
		{name: "missing j", spec: "j-majority", counts: good},
		{name: "bad j", spec: "j-majority:x", counts: good},
		{name: "negative count", spec: "voter", counts: []int64{5, -1}},
		{name: "empty counts", spec: "voter", counts: nil},
		{name: "tiny total", spec: "voter", counts: []int64{1}},
		{name: "core n too small", spec: "core", counts: []int64{2, 1}},
		{name: "core synchronous", spec: "core", counts: good, opts: []Option{WithModel(Synchronous)}},
		{name: "counts heap-poisson", spec: "voter", counts: good,
			opts: []Option{WithEngine(EngineOccupancy), WithModel(HeapPoisson)}},
		{name: "graph size mismatch", spec: "voter", counts: good,
			opts: []Option{WithGraph(mustGraph(t, 12))}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewJob(tc.spec, tc.counts, tc.opts...); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
	// And the full option surface each kind consumes stays accepted.
	if _, err := NewJob("core", good, WithSeed(1), WithModel(Poisson), WithMaxTime(100),
		WithChurn(1e-6), WithCrashes(0.01), WithDesync(0.01, 10), WithRunToHalt(),
		WithProbe(10, func(CoreProbe) {}), WithObserver(10, func(Snapshot) {})); err != nil {
		t.Fatal(err)
	}
	if _, err := NewJob("j-majority:5", good, WithResponseDelay(1),
		WithEdgeLatency(ExpEdgeLatency(0.1)), WithEngine(EnginePerNode)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewJob("usd", good, WithModel(Synchronous), WithMaxRounds(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewJob("onebit", good, WithMaxPhases(5), WithPropagationRounds(3),
		WithPhaseObserver(func(PhaseInfo) {})); err != nil {
		t.Fatal(err)
	}
}

func mustGraph(t *testing.T, n int) Graph {
	t.Helper()
	g, err := CompleteGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestJobMatchesLegacyRunners: for a fixed seed, the Job API must be
// bit-identical to the legacy RunX entry points — they share one execution
// layer.
func TestJobMatchesLegacyRunners(t *testing.T) {
	counts, err := Biased(1500, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	t.Run("core", func(t *testing.T) {
		pop, _ := NewPopulation(counts)
		legacy, err := RunCore(pop, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		job, err := NewJob("core", counts, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := job.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := rep.Core(); got != legacy {
			t.Fatalf("Job %+v != RunCore %+v", got, legacy)
		}
	})
	t.Run("dynamic", func(t *testing.T) {
		pop, _ := NewPopulation(counts)
		legacy, err := RunDynamic("usd", pop, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		job, err := NewJob("usd", counts, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := job.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rep != ReportFromAsync(legacy).withProtocol("usd") {
			t.Fatalf("Job %+v != RunDynamic %+v", rep, legacy)
		}
	})
	t.Run("counts", func(t *testing.T) {
		cc := append([]int64(nil), counts...)
		legacy, err := RunDynamicCounts("two-choices", cc, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		job, err := NewJob("two-choices", counts, WithSeed(5), WithEngine(EngineOccupancy))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := job.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rep != ReportFromAsync(legacy).withProtocol("two-choices") {
			t.Fatalf("Job %+v != RunDynamicCounts %+v", rep, legacy)
		}
	})
	t.Run("sync", func(t *testing.T) {
		pop, _ := NewPopulation(counts)
		legacy, err := RunDynamicSync("3-majority", pop, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		job, err := NewJob("3-majority", counts, WithSeed(5), WithModel(Synchronous))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := job.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rep != ReportFromSync(legacy).withProtocol("3-majority") {
			t.Fatalf("Job %+v != RunDynamicSync %+v", rep, legacy)
		}
	})
	t.Run("onebit", func(t *testing.T) {
		pop, _ := NewPopulation(counts)
		legacy, err := RunOneExtraBit(pop, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		job, err := NewJob("onebit", counts, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := job.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := rep.Phases(); got != legacy {
			t.Fatalf("Job %+v != RunOneExtraBit %+v", got, legacy)
		}
	})
}

// withProtocol stamps the protocol label for comparisons against
// Job-produced reports.
func (r Report) withProtocol(spec string) Report {
	r.Protocol = spec
	return r
}

// TestJobRunOnShuffledPopulation: RunOn executes on a caller-prepared
// population (here shuffled onto a cycle), matching the legacy per-node
// call byte for byte.
func TestJobRunOnShuffledPopulation(t *testing.T) {
	counts, err := Biased(400, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := CycleGraph(400)
	if err != nil {
		t.Fatal(err)
	}
	prep := func() *Population {
		pop, err := NewPopulation(counts)
		if err != nil {
			t.Fatal(err)
		}
		return pop
	}
	legacyPop, jobPop := prep(), prep()
	legacy, err := RunDynamic("voter", legacyPop, WithSeed(9), WithGraph(g), WithMaxTime(1e6))
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob("voter", counts, WithSeed(9), WithGraph(g), WithMaxTime(1e6))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := job.RunOn(context.Background(), jobPop)
	if err != nil {
		t.Fatal(err)
	}
	if rep != ReportFromAsync(legacy).withProtocol("voter") {
		t.Fatalf("RunOn %+v != RunDynamic %+v", rep, legacy)
	}
}

// TestJobReusable: a Job is immutable — two Runs of the same job produce
// identical results and the bound counts never change.
func TestJobReusable(t *testing.T) {
	counts, err := Biased(500, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]Option{
		{WithSeed(2)},
		{WithSeed(2), WithEngine(EngineOccupancy)},
	} {
		job, err := NewJob("two-choices", counts, opts...)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		first, err := job.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		second, err := job.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if first != second {
			t.Fatalf("repeated Run diverged: %+v != %+v", first, second)
		}
	}
}

// TestReportConversions: all four legacy result types convert into the
// unified Report with their fields mapped and detail accessible.
func TestReportConversions(t *testing.T) {
	cr := CoreResult{Done: true, Winner: 2, ConsensusTime: 12.5, Time: 13, Ticks: 99, Jumps: 4, Churns: 1}
	rep := ReportFromCore(cr)
	if rep.Kind != KindCore || !rep.Converged || rep.Winner != 2 || rep.ConsensusTime != 12.5 || rep.Ticks != 99 || rep.Churns != 1 {
		t.Fatalf("core conversion: %+v", rep)
	}
	if got, ok := rep.Core(); !ok || got != cr {
		t.Fatalf("Core() = %+v, %v", got, ok)
	}
	if _, ok := rep.Phases(); ok {
		t.Fatal("core report should not expose Phases()")
	}

	ar := AsyncResult{Done: true, Winner: 1, Time: 7.5, Ticks: 10, Undecided: 3, Churns: 2}
	rep = ReportFromAsync(ar)
	if rep.Kind != KindDynamic || rep.ConsensusTime != 7.5 || rep.Undecided != 3 {
		t.Fatalf("async conversion: %+v", rep)
	}
	if rep := ReportFromAsync(AsyncResult{Done: false, Time: 7.5}); rep.ConsensusTime != 0 {
		t.Fatalf("unconverged async run must not claim a consensus time: %+v", rep)
	}

	sr := SyncResult{Done: true, Winner: 0, Rounds: 17, Undecided: 2}
	rep = ReportFromSync(sr)
	if rep.Kind != KindSyncDynamic || rep.Rounds != 17 || rep.Undecided != 2 {
		t.Fatalf("sync conversion: %+v", rep)
	}

	or := OneExtraBitResult{Done: true, Winner: 3, Phases: 4, Rounds: 40}
	rep = ReportFromOneExtraBit(or)
	if rep.Kind != KindOneExtraBit || rep.Rounds != 40 {
		t.Fatalf("onebit conversion: %+v", rep)
	}
	if got, ok := rep.Phases(); !ok || got != or {
		t.Fatalf("Phases() = %+v, %v", got, ok)
	}
}
