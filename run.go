package plurality

import (
	"fmt"
	"sync"

	"plurality/internal/core"
	"plurality/internal/par"
	"plurality/internal/protocols"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/protocols/onebit"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// RunCore executes the paper's asynchronous plurality-consensus protocol
// (Theorem 1.3) on pop, mutating it in place. With the default options it
// runs the sequential model on the complete graph until all (live) nodes
// agree, every node halts, or the time budget elapses.
func RunCore(pop *Population, opts ...Option) (CoreResult, error) {
	return runCore(core.NewRunner(), pop, newOptions(opts))
}

// runCore executes one core run on the given (possibly reused) runner.
func runCore(rn *core.Runner, pop *Population, o *options) (CoreResult, error) {
	g, err := o.topology(pop)
	if err != nil {
		return CoreResult{}, err
	}
	s, err := o.scheduler(pop.N())
	if err != nil {
		return CoreResult{}, err
	}
	cfg := o.coreConfig(g)
	cfg.Scheduler = s
	cfg.Rand = rng.At(o.seed, 1)
	return rn.Run(pop, cfg)
}

// RunDynamic executes the named sampling dynamic from the protocol
// registry (see Protocols) in the asynchronous model. The spec is the
// registry name, optionally with a parameter — "two-choices", "voter",
// "3-majority", "usd", "j-majority:5".
func RunDynamic(protocol string, pop *Population, opts ...Option) (AsyncResult, error) {
	_, rule, err := protocols.Lookup(protocol)
	if err != nil {
		return AsyncResult{}, err
	}
	return runAsyncRule(pop, rule, opts)
}

// RunDynamicSync executes the named sampling dynamic in the synchronous
// model (discrete simultaneous rounds); see RunDynamic for the spec
// syntax.
func RunDynamicSync(protocol string, pop *Population, opts ...Option) (SyncResult, error) {
	_, rule, err := protocols.Lookup(protocol)
	if err != nil {
		return SyncResult{}, err
	}
	return runSyncRule(pop, rule, opts)
}

// RunDynamicCounts executes the named sampling dynamic directly on a color
// histogram with the count-collapsed occupancy engine: counts[c] nodes
// initially hold color c, and the run needs O(k) memory regardless of the
// population size, which is what lets exact simulations reach n = 10⁸–10⁹.
// counts is mutated in place to the final histogram (USD's undecided
// leftovers, if any, are reported in AsyncResult.Undecided). The topology
// is the complete graph on the histogram total (override with WithGraph
// only to select a self-sampling Complete variant); per-node extensions —
// WithResponseDelay, WithEdgeLatency, EnginePerNode — are errors, WithChurn
// composes fine.
func RunDynamicCounts(protocol string, counts []int64, opts ...Option) (AsyncResult, error) {
	d, rule, err := protocols.Lookup(protocol)
	if err != nil {
		return AsyncResult{}, err
	}
	return runCountsRule(counts, d, rule, opts)
}

// The per-protocol wrappers below predate the registry and remain as thin
// compatibility shims over the generic RunDynamic entry points.

// RunTwoChoicesSync executes the synchronous Two-Choices dynamic
// (Theorem 1.1) until consensus or the round budget.
func RunTwoChoicesSync(pop *Population, opts ...Option) (SyncResult, error) {
	return RunDynamicSync("two-choices", pop, opts...)
}

// RunTwoChoicesAsync executes Two-Choices in the asynchronous model.
func RunTwoChoicesAsync(pop *Population, opts ...Option) (AsyncResult, error) {
	return RunDynamic("two-choices", pop, opts...)
}

// RunVoterSync executes the Voter baseline in the synchronous model.
func RunVoterSync(pop *Population, opts ...Option) (SyncResult, error) {
	return RunDynamicSync("voter", pop, opts...)
}

// RunVoterAsync executes the Voter baseline in the asynchronous model.
func RunVoterAsync(pop *Population, opts ...Option) (AsyncResult, error) {
	return RunDynamic("voter", pop, opts...)
}

// RunThreeMajoritySync executes the 3-Majority baseline in the synchronous
// model.
func RunThreeMajoritySync(pop *Population, opts ...Option) (SyncResult, error) {
	return RunDynamicSync("3-majority", pop, opts...)
}

// RunThreeMajorityAsync executes the 3-Majority baseline in the
// asynchronous model.
func RunThreeMajorityAsync(pop *Population, opts ...Option) (AsyncResult, error) {
	return RunDynamic("3-majority", pop, opts...)
}

// RunOneExtraBit executes the synchronous OneExtraBit protocol
// (Theorem 1.2) until consensus or the phase budget (MaxRounds/10 phases by
// default ordering of magnitude; override with WithMaxRounds).
func RunOneExtraBit(pop *Population, opts ...Option) (OneExtraBitResult, error) {
	o := newOptions(opts)
	g, err := o.topology(pop)
	if err != nil {
		return OneExtraBitResult{}, err
	}
	maxPhases := o.maxRounds / 10
	if maxPhases < 1 {
		maxPhases = 1
	}
	return onebit.Run(pop, onebit.Config{
		Graph:             g,
		Rand:              rng.At(o.seed, 0),
		MaxPhases:         maxPhases,
		PropagationRounds: o.propagationRounds,
		OnPhase:           o.onPhase,
	})
}

func runSyncRule(pop *Population, rule dynamics.Rule, opts []Option) (SyncResult, error) {
	o := newOptions(opts)
	g, err := o.topology(pop)
	if err != nil {
		return SyncResult{}, err
	}
	return dynamics.RunSync(pop, rule, dynamics.SyncConfig{
		Graph:     g,
		Rand:      rng.At(o.seed, 0),
		MaxRounds: o.maxRounds,
	})
}

func runAsyncRule(pop *Population, rule dynamics.Rule, opts []Option) (AsyncResult, error) {
	o := newOptions(opts)
	g, err := o.topology(pop)
	if err != nil {
		return AsyncResult{}, err
	}
	s, err := o.scheduler(pop.N())
	if err != nil {
		return AsyncResult{}, err
	}
	cfg := dynamics.AsyncConfig{
		Graph:     g,
		Scheduler: s,
		Rand:      rng.At(o.seed, 1),
		MaxTime:   o.maxTime,
	}
	if o.delayRate > 0 {
		cfg.Delay = sched.ExpDelay{Rate: o.delayRate}
	}
	cfg.Latency = o.latency
	cfg.Churn = o.churnRate
	cfg.Engine = o.dynamicsEngine()
	return dynamics.RunAsync(pop, rule, cfg)
}

// dynamicsEngine maps the public engine option onto the internal one.
func (o *options) dynamicsEngine() dynamics.Engine {
	switch o.engine {
	case EnginePerNode:
		return dynamics.EnginePerNode
	case EngineOccupancy:
		return dynamics.EngineOccupancy
	default:
		return dynamics.EngineAuto
	}
}

// RunTwoChoicesCounts executes the asynchronous Two-Choices dynamic on a
// color histogram with the count-collapsed occupancy engine; see
// RunDynamicCounts.
func RunTwoChoicesCounts(counts []int64, opts ...Option) (AsyncResult, error) {
	return RunDynamicCounts("two-choices", counts, opts...)
}

// RunVoterCounts executes the Voter baseline on a color histogram with the
// count-collapsed occupancy engine; see RunDynamicCounts.
func RunVoterCounts(counts []int64, opts ...Option) (AsyncResult, error) {
	return RunDynamicCounts("voter", counts, opts...)
}

// RunThreeMajorityCounts executes the 3-Majority baseline on a color
// histogram with the count-collapsed occupancy engine; see
// RunDynamicCounts.
func RunThreeMajorityCounts(counts []int64, opts ...Option) (AsyncResult, error) {
	return RunDynamicCounts("3-majority", counts, opts...)
}

func runCountsRule(counts []int64, d protocols.Descriptor, rule dynamics.Rule, opts []Option) (AsyncResult, error) {
	o := newOptions(opts)
	// The O(k)-memory guards live on the registry descriptor so every
	// protocol — including newly registered ones — shares them.
	n, err := d.ValidateCounts(counts, o.model == HeapPoisson)
	if err != nil {
		return AsyncResult{}, err
	}
	s, err := o.scheduler(int(n))
	if err != nil {
		return AsyncResult{}, err
	}
	cfg := dynamics.AsyncConfig{
		Graph:     o.graph,
		Scheduler: s,
		Rand:      rng.At(o.seed, 1),
		MaxTime:   o.maxTime,
		Churn:     o.churnRate,
		Engine:    o.dynamicsEngine(),
	}
	if o.delayRate > 0 {
		cfg.Delay = sched.ExpDelay{Rate: o.delayRate}
	}
	cfg.Latency = o.latency
	return dynamics.RunAsyncCounts(counts, rule, cfg)
}

// topology returns the configured graph or the default complete graph
// sized to the population.
func (o *options) topology(pop *Population) (Graph, error) {
	if pop == nil {
		return nil, fmt.Errorf("plurality: nil population")
	}
	if o.graph != nil {
		return o.graph, nil
	}
	return CompleteGraph(pop.N())
}

// scheduler builds the configured asynchronous engine.
func (o *options) scheduler(n int) (sched.Scheduler, error) {
	switch o.model {
	case Sequential:
		return sched.NewSequential(n, rng.At(o.seed, 0))
	case Poisson:
		return sched.NewPoisson(n, 1, rng.At(o.seed, 0))
	case HeapPoisson:
		return sched.NewHeapPoisson(n, 1, rng.At(o.seed, 0))
	default:
		return nil, fmt.Errorf("plurality: unknown model %d", o.model)
	}
}

// RunCoreTrials executes trials independent core-protocol runs, each on a
// fresh population built from counts, sharded across WithTrialWorkers
// goroutines (default GOMAXPROCS). Trial t runs with a seed derived
// deterministically from the base WithSeed and t, so the result slice is a
// pure function of (counts, trials, options) — independent of the worker
// count and of scheduling. Results are returned in trial order; the first
// failing trial's error is returned alongside the full slice (later trials
// still run, so the successful entries remain usable).
//
// Populations and protocol run state are pooled across trials: a trial
// reuses the previous trial's ~seven O(n) buffers instead of reallocating
// and rezeroing them, which is where sweep throughput at large n used to
// go. Pooling cannot change results — a trial's outcome is a pure function
// of its seed.
func RunCoreTrials(counts []int64, trials int, opts ...Option) ([]CoreResult, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("plurality: trials = %d, want > 0", trials)
	}
	o := newOptions(opts)
	base, err := NewPopulation(counts)
	if err != nil {
		return nil, err
	}

	// One pooled (population, runner) pair per concurrently active worker;
	// sync.Pool keeps the pairs alive exactly as long as the trial loop
	// needs them.
	type trialState struct {
		pop    *Population
		runner *core.Runner
	}
	pool := sync.Pool{New: func() any {
		return &trialState{pop: base.Clone(), runner: core.NewRunner()}
	}}

	results := make([]CoreResult, trials)
	err = par.ForEach(o.trialWorkers, trials, func(trial int) error {
		ts := pool.Get().(*trialState)
		defer pool.Put(ts)
		if err := ts.pop.Reset(base); err != nil {
			return err
		}
		to := *o
		to.seed = TrialSeed(o.seed, trial)
		res, err := runCore(ts.runner, ts.pop, &to)
		results[trial] = res
		return err
	})
	return results, err
}

// TrialSeed derives the seed trial t of a multi-trial run uses from the
// base seed: trial 0 keeps the base seed (a 1-trial run matches RunCore
// exactly) and later trials get decorrelated streams via SplitMix-style
// mixing.
func TrialSeed(seed uint64, trial int) uint64 {
	if trial == 0 {
		return seed
	}
	return rng.At(seed, trial).Uint64()
}
