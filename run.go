package plurality

import (
	"fmt"

	"plurality/internal/core"
	"plurality/internal/par"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/protocols/onebit"
	"plurality/internal/protocols/threemajority"
	"plurality/internal/protocols/twochoices"
	"plurality/internal/protocols/voter"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// RunCore executes the paper's asynchronous plurality-consensus protocol
// (Theorem 1.3) on pop, mutating it in place. With the default options it
// runs the sequential model on the complete graph until all (live) nodes
// agree, every node halts, or the time budget elapses.
func RunCore(pop *Population, opts ...Option) (CoreResult, error) {
	o := newOptions(opts)
	g, err := o.topology(pop)
	if err != nil {
		return CoreResult{}, err
	}
	s, err := o.scheduler(pop.N())
	if err != nil {
		return CoreResult{}, err
	}
	cfg := o.coreConfig(g)
	cfg.Scheduler = s
	cfg.Rand = rng.At(o.seed, 1)
	return core.Run(pop, cfg)
}

// RunTwoChoicesSync executes the synchronous Two-Choices dynamic
// (Theorem 1.1) until consensus or the round budget.
func RunTwoChoicesSync(pop *Population, opts ...Option) (SyncResult, error) {
	return runSyncRule(pop, twochoices.Rule{}, opts)
}

// RunTwoChoicesAsync executes Two-Choices in the asynchronous model.
func RunTwoChoicesAsync(pop *Population, opts ...Option) (AsyncResult, error) {
	return runAsyncRule(pop, twochoices.Rule{}, opts)
}

// RunVoterSync executes the Voter baseline in the synchronous model.
func RunVoterSync(pop *Population, opts ...Option) (SyncResult, error) {
	return runSyncRule(pop, voter.Rule{}, opts)
}

// RunVoterAsync executes the Voter baseline in the asynchronous model.
func RunVoterAsync(pop *Population, opts ...Option) (AsyncResult, error) {
	return runAsyncRule(pop, voter.Rule{}, opts)
}

// RunThreeMajoritySync executes the 3-Majority baseline in the synchronous
// model.
func RunThreeMajoritySync(pop *Population, opts ...Option) (SyncResult, error) {
	return runSyncRule(pop, threemajority.Rule{}, opts)
}

// RunThreeMajorityAsync executes the 3-Majority baseline in the
// asynchronous model.
func RunThreeMajorityAsync(pop *Population, opts ...Option) (AsyncResult, error) {
	return runAsyncRule(pop, threemajority.Rule{}, opts)
}

// RunOneExtraBit executes the synchronous OneExtraBit protocol
// (Theorem 1.2) until consensus or the phase budget (MaxRounds/10 phases by
// default ordering of magnitude; override with WithMaxRounds).
func RunOneExtraBit(pop *Population, opts ...Option) (OneExtraBitResult, error) {
	o := newOptions(opts)
	g, err := o.topology(pop)
	if err != nil {
		return OneExtraBitResult{}, err
	}
	maxPhases := o.maxRounds / 10
	if maxPhases < 1 {
		maxPhases = 1
	}
	return onebit.Run(pop, onebit.Config{
		Graph:             g,
		Rand:              rng.At(o.seed, 0),
		MaxPhases:         maxPhases,
		PropagationRounds: o.propagationRounds,
		OnPhase:           o.onPhase,
	})
}

func runSyncRule(pop *Population, rule dynamics.Rule, opts []Option) (SyncResult, error) {
	o := newOptions(opts)
	g, err := o.topology(pop)
	if err != nil {
		return SyncResult{}, err
	}
	return dynamics.RunSync(pop, rule, dynamics.SyncConfig{
		Graph:     g,
		Rand:      rng.At(o.seed, 0),
		MaxRounds: o.maxRounds,
	})
}

func runAsyncRule(pop *Population, rule dynamics.Rule, opts []Option) (AsyncResult, error) {
	o := newOptions(opts)
	g, err := o.topology(pop)
	if err != nil {
		return AsyncResult{}, err
	}
	s, err := o.scheduler(pop.N())
	if err != nil {
		return AsyncResult{}, err
	}
	cfg := dynamics.AsyncConfig{
		Graph:     g,
		Scheduler: s,
		Rand:      rng.At(o.seed, 1),
		MaxTime:   o.maxTime,
	}
	if o.delayRate > 0 {
		cfg.Delay = sched.ExpDelay{Rate: o.delayRate}
	}
	cfg.Latency = o.latency
	cfg.Churn = o.churnRate
	return dynamics.RunAsync(pop, rule, cfg)
}

// topology returns the configured graph or the default complete graph
// sized to the population.
func (o *options) topology(pop *Population) (Graph, error) {
	if pop == nil {
		return nil, fmt.Errorf("plurality: nil population")
	}
	if o.graph != nil {
		return o.graph, nil
	}
	return CompleteGraph(pop.N())
}

// scheduler builds the configured asynchronous engine.
func (o *options) scheduler(n int) (sched.Scheduler, error) {
	switch o.model {
	case Sequential:
		return sched.NewSequential(n, rng.At(o.seed, 0))
	case Poisson:
		return sched.NewPoisson(n, 1, rng.At(o.seed, 0))
	case HeapPoisson:
		return sched.NewHeapPoisson(n, 1, rng.At(o.seed, 0))
	default:
		return nil, fmt.Errorf("plurality: unknown model %d", o.model)
	}
}

// RunCoreTrials executes trials independent core-protocol runs, each on a
// fresh population built from counts, sharded across WithTrialWorkers
// goroutines (default GOMAXPROCS). Trial t runs with a seed derived
// deterministically from the base WithSeed and t, so the result slice is a
// pure function of (counts, trials, options) — independent of the worker
// count and of scheduling. Results are returned in trial order; the first
// failing trial's error is returned alongside the full slice (later trials
// still run, so the successful entries remain usable).
func RunCoreTrials(counts []int64, trials int, opts ...Option) ([]CoreResult, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("plurality: trials = %d, want > 0", trials)
	}
	o := newOptions(opts)
	results := make([]CoreResult, trials)
	err := par.ForEach(o.trialWorkers, trials, func(trial int) error {
		pop, err := NewPopulation(counts)
		if err != nil {
			return err
		}
		trialOpts := append(append([]Option{}, opts...), WithSeed(TrialSeed(o.seed, trial)))
		res, err := RunCore(pop, trialOpts...)
		results[trial] = res
		return err
	})
	return results, err
}

// TrialSeed derives the seed trial t of a multi-trial run uses from the
// base seed: trial 0 keeps the base seed (a 1-trial run matches RunCore
// exactly) and later trials get decorrelated streams via SplitMix-style
// mixing.
func TrialSeed(seed uint64, trial int) uint64 {
	if trial == 0 {
		return seed
	}
	return rng.At(seed, trial).Uint64()
}
