package plurality

// This file holds the legacy one-shot entry points, kept as thin shims over
// the Job execution layer (see job.go): each RunX call builds the same
// option struct a Job would and dispatches to the shared exec helpers with
// a background context, so fixed-seed results are bit-identical across the
// two API generations. New code should prefer NewJob / Job.Run /
// Job.Trials, which add eager validation, context cancellation, uniform
// Reports and pooled multi-trial execution.

import (
	"context"

	"plurality/internal/core"
	"plurality/internal/protocols"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/protocols/onebit"
	"plurality/internal/rng"
)

// RunCore executes the paper's asynchronous plurality-consensus protocol
// (Theorem 1.3) on pop, mutating it in place. With the default options it
// runs the sequential model on the complete graph until all (live) nodes
// agree, every node halts, or the time budget elapses.
func RunCore(pop *Population, opts ...Option) (CoreResult, error) {
	return execCore(context.Background(), core.NewRunner(), pop, newOptions(opts))
}

// RunDynamic executes the named sampling dynamic from the protocol
// registry (see Protocols) in the asynchronous model. The spec is the
// registry name, optionally with a parameter — "two-choices", "voter",
// "3-majority", "usd", "j-majority:5".
func RunDynamic(protocol string, pop *Population, opts ...Option) (AsyncResult, error) {
	_, rule, err := protocols.Lookup(protocol)
	if err != nil {
		return AsyncResult{}, err
	}
	return execAsync(context.Background(), new(dynamics.Runner), pop, rule, newOptions(opts))
}

// RunDynamicSync executes the named sampling dynamic in the synchronous
// model (discrete simultaneous rounds); see RunDynamic for the spec
// syntax.
func RunDynamicSync(protocol string, pop *Population, opts ...Option) (SyncResult, error) {
	_, rule, err := protocols.Lookup(protocol)
	if err != nil {
		return SyncResult{}, err
	}
	return execSync(context.Background(), new(dynamics.Runner), pop, rule, newOptions(opts))
}

// RunDynamicCounts executes the named sampling dynamic directly on a color
// histogram with the count-collapsed occupancy engine: counts[c] nodes
// initially hold color c, and the run needs O(k) memory regardless of the
// population size, which is what lets exact simulations reach n = 10⁸–10⁹.
// counts is mutated in place to the final histogram (USD's undecided
// leftovers, if any, are reported in AsyncResult.Undecided). The topology
// is the complete graph on the histogram total (override with WithGraph
// only to select a self-sampling Complete variant); per-node extensions —
// WithResponseDelay, WithEdgeLatency, EnginePerNode — are errors, WithChurn
// composes fine.
func RunDynamicCounts(protocol string, counts []int64, opts ...Option) (AsyncResult, error) {
	d, rule, err := protocols.Lookup(protocol)
	if err != nil {
		return AsyncResult{}, err
	}
	return execCounts(context.Background(), new(dynamics.Runner), counts, d, rule, newOptions(opts))
}

// The per-protocol wrappers below predate the registry and remain as thin
// compatibility shims over the generic RunDynamic entry points.

// RunTwoChoicesSync executes the synchronous Two-Choices dynamic
// (Theorem 1.1) until consensus or the round budget.
func RunTwoChoicesSync(pop *Population, opts ...Option) (SyncResult, error) {
	return RunDynamicSync("two-choices", pop, opts...)
}

// RunTwoChoicesAsync executes Two-Choices in the asynchronous model.
func RunTwoChoicesAsync(pop *Population, opts ...Option) (AsyncResult, error) {
	return RunDynamic("two-choices", pop, opts...)
}

// RunVoterSync executes the Voter baseline in the synchronous model.
func RunVoterSync(pop *Population, opts ...Option) (SyncResult, error) {
	return RunDynamicSync("voter", pop, opts...)
}

// RunVoterAsync executes the Voter baseline in the asynchronous model.
func RunVoterAsync(pop *Population, opts ...Option) (AsyncResult, error) {
	return RunDynamic("voter", pop, opts...)
}

// RunThreeMajoritySync executes the 3-Majority baseline in the synchronous
// model.
func RunThreeMajoritySync(pop *Population, opts ...Option) (SyncResult, error) {
	return RunDynamicSync("3-majority", pop, opts...)
}

// RunThreeMajorityAsync executes the 3-Majority baseline in the
// asynchronous model.
func RunThreeMajorityAsync(pop *Population, opts ...Option) (AsyncResult, error) {
	return RunDynamic("3-majority", pop, opts...)
}

// RunOneExtraBit executes the synchronous OneExtraBit protocol
// (Theorem 1.2) until consensus or the phase budget. The budget is
// WithMaxPhases when given; otherwise the deprecated legacy derivation
// max(1, MaxRounds/10) applies — an order-of-magnitude heuristic kept only
// for compatibility. Prefer WithMaxPhases.
func RunOneExtraBit(pop *Population, opts ...Option) (OneExtraBitResult, error) {
	return execOneBit(context.Background(), new(onebit.Runner), pop, newOptions(opts))
}

// RunTwoChoicesCounts executes the asynchronous Two-Choices dynamic on a
// color histogram with the count-collapsed occupancy engine; see
// RunDynamicCounts.
func RunTwoChoicesCounts(counts []int64, opts ...Option) (AsyncResult, error) {
	return RunDynamicCounts("two-choices", counts, opts...)
}

// RunVoterCounts executes the Voter baseline on a color histogram with the
// count-collapsed occupancy engine; see RunDynamicCounts.
func RunVoterCounts(counts []int64, opts ...Option) (AsyncResult, error) {
	return RunDynamicCounts("voter", counts, opts...)
}

// RunThreeMajorityCounts executes the 3-Majority baseline on a color
// histogram with the count-collapsed occupancy engine; see
// RunDynamicCounts.
func RunThreeMajorityCounts(counts []int64, opts ...Option) (AsyncResult, error) {
	return RunDynamicCounts("3-majority", counts, opts...)
}

// RunCoreTrials executes trials independent core-protocol runs, each on a
// fresh population built from counts — the legacy spelling of
// NewJob("core", counts, opts...).Trials(ctx, trials), which generalizes
// the same deterministic seed derivation and sync.Pool state reuse to every
// registered protocol and engine. See Job.Trials for the semantics.
func RunCoreTrials(counts []int64, trials int, opts ...Option) ([]CoreResult, error) {
	j, err := newJob("core", counts, newOptions(opts))
	if err != nil {
		return nil, err
	}
	reps, err := j.Trials(context.Background(), trials)
	if reps == nil {
		return nil, err
	}
	results := make([]CoreResult, len(reps))
	for i, rep := range reps {
		results[i], _ = rep.Core()
	}
	return results, err
}

// TrialSeed derives the seed trial t of a multi-trial run uses from the
// base seed: trial 0 keeps the base seed (a 1-trial run matches Run
// exactly) and later trials get decorrelated streams via SplitMix-style
// mixing.
func TrialSeed(seed uint64, trial int) uint64 {
	if trial == 0 {
		return seed
	}
	return rng.At(seed, trial).Uint64()
}
