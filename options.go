package plurality

import (
	"plurality/internal/core"
	"plurality/internal/graph"
	"plurality/internal/sched"
)

// Model selects the asynchronous execution model.
type Model int

const (
	// Sequential is the paper's sequential model: each discrete step
	// activates one node chosen uniformly at random, and parallel time
	// advances by 1/n. This is the default.
	Sequential Model = iota + 1
	// Poisson is the continuous model: every node ticks according to an
	// independent unit-rate Poisson clock.
	Poisson
)

// Default budgets applied when no override is given.
const (
	// DefaultMaxTime bounds asynchronous runs in parallel time.
	DefaultMaxTime = 1e5
	// DefaultMaxRounds bounds synchronous runs.
	DefaultMaxRounds = 1_000_000
)

// Option configures a protocol run.
type Option interface {
	apply(*options)
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

type options struct {
	seed          uint64
	model         Model
	maxTime       float64
	maxRounds     int
	delayRate     float64
	graph         Graph
	probeInterval float64
	onProbe       func(CoreProbe)
	onPhase       func(PhaseInfo)

	delta, phases, gadgetSamples, endgameTicks int
	propagationRounds                          int

	disableGadget, endgameOnly, runToHalt bool
	crashFraction                         float64
	desyncFraction                        float64
	desyncSpread                          int
}

func newOptions(opts []Option) *options {
	o := &options{
		seed:      1,
		model:     Sequential,
		maxTime:   DefaultMaxTime,
		maxRounds: DefaultMaxRounds,
	}
	for _, opt := range opts {
		opt.apply(o)
	}
	return o
}

// WithSeed fixes the random seed; runs with equal seeds are identical.
// The default seed is 1.
func WithSeed(seed uint64) Option {
	return optionFunc(func(o *options) { o.seed = seed })
}

// WithModel selects the asynchronous execution model (default Sequential).
// Synchronous runners ignore it.
func WithModel(m Model) Option {
	return optionFunc(func(o *options) { o.model = m })
}

// WithMaxTime bounds asynchronous runs in parallel time (default
// DefaultMaxTime).
func WithMaxTime(t float64) Option {
	return optionFunc(func(o *options) { o.maxTime = t })
}

// WithMaxRounds bounds synchronous runs (default DefaultMaxRounds).
func WithMaxRounds(r int) Option {
	return optionFunc(func(o *options) { o.maxRounds = r })
}

// WithResponseDelay enables the §4 extension: every request/response
// exchange incurs an Exp(rate) delay during which the node blocks (mean
// delay 1/rate). Applies to asynchronous runners.
func WithResponseDelay(rate float64) Option {
	return optionFunc(func(o *options) { o.delayRate = rate })
}

// WithGraph overrides the communication topology (default: the complete
// graph on pop.N() nodes, the paper's setting).
func WithGraph(g Graph) Option {
	return optionFunc(func(o *options) { o.graph = g })
}

// WithProbe registers a periodic synchronization-quality observer on core
// runs, invoked every interval units of parallel time.
func WithProbe(interval float64, fn func(CoreProbe)) Option {
	return optionFunc(func(o *options) {
		o.probeInterval = interval
		o.onProbe = fn
	})
}

// WithPhaseObserver registers a per-phase observer on OneExtraBit runs.
func WithPhaseObserver(fn func(PhaseInfo)) Option {
	return optionFunc(func(o *options) { o.onPhase = fn })
}

// WithDelta overrides the core protocol's block length ∆.
func WithDelta(delta int) Option {
	return optionFunc(func(o *options) { o.delta = delta })
}

// WithPhases overrides the core protocol's part-1 phase count.
func WithPhases(phases int) Option {
	return optionFunc(func(o *options) { o.phases = phases })
}

// WithGadgetSamples overrides the Sync Gadget sampling length.
func WithGadgetSamples(samples int) Option {
	return optionFunc(func(o *options) { o.gadgetSamples = samples })
}

// WithEndgameTicks overrides the per-node part-2 budget.
func WithEndgameTicks(ticks int) Option {
	return optionFunc(func(o *options) { o.endgameTicks = ticks })
}

// WithPropagationRounds overrides OneExtraBit's Bit-Propagation sub-phase
// length.
func WithPropagationRounds(rounds int) Option {
	return optionFunc(func(o *options) { o.propagationRounds = rounds })
}

// WithoutSyncGadget disables the Sync Gadget — the ablation of experiment
// E7. The protocol then relies on raw Poisson-clock concentration only.
func WithoutSyncGadget() Option {
	return optionFunc(func(o *options) { o.disableGadget = true })
}

// WithEndgameOnly starts every node directly in part 2 (used to study the
// §3.2 endgame in isolation from a c1 ≥ (1−ε)n start).
func WithEndgameOnly() Option {
	return optionFunc(func(o *options) { o.endgameOnly = true })
}

// WithRunToHalt keeps a core run going after consensus until every live
// node halts, making Result.FirstHaltTime and EndgameSafe meaningful.
func WithRunToHalt() Option {
	return optionFunc(func(o *options) { o.runToHalt = true })
}

// WithCrashes marks a fraction of nodes as crashed: they never act but
// remain visible to sampling; consensus is evaluated over live nodes.
func WithCrashes(fraction float64) Option {
	return optionFunc(func(o *options) { o.crashFraction = fraction })
}

// WithDesync starts the given fraction of nodes with working/real times
// drawn uniformly from [0, spread) — adversarially poorly synchronized
// nodes for the Sync Gadget to repair.
func WithDesync(fraction float64, spread int) Option {
	return optionFunc(func(o *options) {
		o.desyncFraction = fraction
		o.desyncSpread = spread
	})
}

// coreConfig assembles the internal core configuration. The scheduler is
// filled in by the runner (it depends on pop.N()).
func (o *options) coreConfig(g graph.Graph) core.Config {
	cfg := core.Config{
		Graph:             g,
		MaxTime:           o.maxTime,
		Delta:             o.delta,
		Phases:            o.phases,
		GadgetSamples:     o.gadgetSamples,
		EndgameTicks:      o.endgameTicks,
		DisableSyncGadget: o.disableGadget,
		SkipPart1:         o.endgameOnly,
		RunToHalt:         o.runToHalt,
		CrashFraction:     o.crashFraction,
		DesyncFraction:    o.desyncFraction,
		DesyncSpread:      o.desyncSpread,
		ProbeInterval:     o.probeInterval,
		OnProbe:           o.onProbe,
	}
	if o.delayRate > 0 {
		cfg.Delay = sched.ExpDelay{Rate: o.delayRate}
	}
	return cfg
}
