package plurality_test

import (
	"errors"
	"testing"

	"plurality"
	"plurality/internal/stats"
)

// ksStat and ksThresh delegate to the shared KS helpers in internal/stats.
func ksStat(a, b []float64) float64            { return stats.KSStatistic(a, b) }
func ksThresh(alpha float64, m, n int) float64 { return stats.KSThreshold(alpha, m, n) }

// runEngineTrials collects consensus times and tick counts of an
// asynchronous dynamics run under the given engine.
func runEngineTrials(t *testing.T, run func(*plurality.Population, ...plurality.Option) (plurality.AsyncResult, error),
	counts []int64, engine plurality.Engine, model plurality.Model, trials int, seedBase uint64) (times, ticks []float64) {
	t.Helper()
	for i := 0; i < trials; i++ {
		pop, err := plurality.NewPopulation(counts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := run(pop,
			plurality.WithSeed(seedBase+uint64(i)),
			plurality.WithEngine(engine),
			plurality.WithModel(model),
			plurality.WithMaxTime(1e6))
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if !pop.ConsensusOn(res.Winner) {
			t.Fatalf("trial %d: population disagrees with reported winner %d", i, res.Winner)
		}
		times = append(times, res.Time)
		ticks = append(ticks, float64(res.Ticks))
	}
	return times, ticks
}

// TestOccupancyMatchesPerNodeDistributions is the cross-engine half of the
// distributional-equivalence gate: for Two-Choices and 3-Majority under
// both the sequential and the Poisson model, the count-collapsed engine's
// consensus-time and tick-count distributions must be KS-indistinguishable
// from the per-node engine's. The runs are deterministic; a failure means
// the collapse is wrong, not bad luck.
func TestOccupancyMatchesPerNodeDistributions(t *testing.T) {
	const trials = 200
	counts := []int64{120, 60, 60}
	runs := map[string]func(*plurality.Population, ...plurality.Option) (plurality.AsyncResult, error){
		"two-choices": plurality.RunTwoChoicesAsync,
		"3-majority":  plurality.RunThreeMajorityAsync,
	}
	for _, model := range []plurality.Model{plurality.Sequential, plurality.Poisson} {
		for name, run := range runs {
			perT, perM := runEngineTrials(t, run, counts, plurality.EnginePerNode, model, trials, 100)
			occT, occM := runEngineTrials(t, run, counts, plurality.EngineOccupancy, model, trials, 9000)
			thresh := ksThresh(0.001, trials, trials) + 1.0/240
			if d := ksStat(perT, occT); d > thresh {
				t.Errorf("%s model=%d: consensus-time KS %.4f > %.4f", name, model, d, thresh)
			}
			if d := ksStat(perM, occM); d > thresh {
				t.Errorf("%s model=%d: tick-count KS %.4f > %.4f", name, model, d, thresh)
			}
		}
	}
}

// TestOccupancyMatchesPerNodeTrajectory compares the engines mid-run: the
// distribution of the plurality color's support after exactly MaxTime units
// of parallel time (the run times out by construction) must agree. This
// exercises the occupancy engine's timeout bookkeeping — tick budgets drawn
// from Poisson order statistics — against ground truth.
func TestOccupancyMatchesPerNodeTrajectory(t *testing.T) {
	const trials = 250
	counts := []int64{150, 75, 75}
	collect := func(engine plurality.Engine) []float64 {
		var out []float64
		for i := 0; i < trials; i++ {
			pop, err := plurality.NewPopulation(counts)
			if err != nil {
				t.Fatal(err)
			}
			_, err = plurality.RunTwoChoicesAsync(pop,
				plurality.WithSeed(3000+uint64(i)),
				plurality.WithEngine(engine),
				plurality.WithModel(plurality.Poisson),
				plurality.WithMaxTime(3)) // far short of consensus
			if err == nil || !errors.Is(err, plurality.ErrTimeLimit) {
				t.Fatalf("trial %d: err = %v, want ErrTimeLimit", i, err)
			}
			out = append(out, float64(pop.Count(0)))
		}
		return out
	}
	per := collect(plurality.EnginePerNode)
	occ := collect(plurality.EngineOccupancy)
	// The support counts live on a lattice of integers; allow the usual
	// lattice slack on top of the KS threshold.
	thresh := ksThresh(0.001, trials, trials) + 1.0/50
	if d := ksStat(per, occ); d > thresh {
		t.Errorf("plurality-support trajectory KS %.4f > %.4f", d, thresh)
	}
}

// runDynamicBySpec adapts the registry entry point to runEngineTrials.
func runDynamicBySpec(spec string) func(*plurality.Population, ...plurality.Option) (plurality.AsyncResult, error) {
	return func(pop *plurality.Population, opts ...plurality.Option) (plurality.AsyncResult, error) {
		return plurality.RunDynamic(spec, pop, opts...)
	}
}

// TestNewProtocolsMatchPerNodeDistributions extends the cross-engine
// distributional-equivalence gate to the registry's new families: for USD
// (whose undecided state rides in the occupancy engine's hidden bucket)
// and a j-Majority instance off the anchor points, the count-collapsed
// engine's consensus-time and tick-count distributions must be
// KS-indistinguishable from the per-node engine's, under both time models.
func TestNewProtocolsMatchPerNodeDistributions(t *testing.T) {
	const trials = 200
	counts := []int64{120, 60, 60}
	for _, model := range []plurality.Model{plurality.Sequential, plurality.Poisson} {
		for _, spec := range []string{"usd", "j-majority:4"} {
			run := runDynamicBySpec(spec)
			perT, perM := runEngineTrials(t, run, counts, plurality.EnginePerNode, model, trials, 100)
			occT, occM := runEngineTrials(t, run, counts, plurality.EngineOccupancy, model, trials, 9000)
			thresh := ksThresh(0.001, trials, trials) + 1.0/240
			if d := ksStat(perT, occT); d > thresh {
				t.Errorf("%s model=%d: consensus-time KS %.4f > %.4f", spec, model, d, thresh)
			}
			if d := ksStat(perM, occM); d > thresh {
				t.Errorf("%s model=%d: tick-count KS %.4f > %.4f", spec, model, d, thresh)
			}
		}
	}
}

// TestJMajorityOneIsVoterBitForBit: j = 1 adopts the single sample without
// consuming any tie-break randomness, so under the per-node engine it must
// reproduce Voter exactly, seed for seed — the strongest form of the j=1
// anchor gate.
func TestJMajorityOneIsVoterBitForBit(t *testing.T) {
	counts := []int64{90, 60, 50}
	for seed := uint64(0); seed < 20; seed++ {
		popJ, err := plurality.NewPopulation(counts)
		if err != nil {
			t.Fatal(err)
		}
		popV, err := plurality.NewPopulation(counts)
		if err != nil {
			t.Fatal(err)
		}
		opts := []plurality.Option{
			plurality.WithSeed(seed),
			plurality.WithEngine(plurality.EnginePerNode),
			plurality.WithModel(plurality.Poisson),
			plurality.WithMaxTime(1e6),
		}
		resJ, errJ := plurality.RunDynamic("j-majority:1", popJ, opts...)
		resV, errV := plurality.RunVoterAsync(popV, opts...)
		if errJ != nil || errV != nil {
			t.Fatalf("seed %d: errs %v / %v", seed, errJ, errV)
		}
		if resJ != resV {
			t.Fatalf("seed %d: j-majority:1 %+v != voter %+v", seed, resJ, resV)
		}
	}
}

// TestJMajorityThreeMatchesThreeMajority: the j = 3 instance must be
// KS-indistinguishable from the 3-Majority built-in (whose first-sample
// tie-break is uniform over the tied colors by exchangeability) on
// consensus times and tick counts. Fixed seeds; the kernels' exact
// equality is separately pinned in the jmajority package.
func TestJMajorityThreeMatchesThreeMajority(t *testing.T) {
	const trials = 250
	counts := []int64{120, 60, 60}
	for _, engine := range []plurality.Engine{plurality.EnginePerNode, plurality.EngineOccupancy} {
		jT, jM := runEngineTrials(t, runDynamicBySpec("j-majority:3"), counts, engine, plurality.Poisson, trials, 300)
		mT, mM := runEngineTrials(t, plurality.RunThreeMajorityAsync, counts, engine, plurality.Poisson, trials, 7700)
		thresh := ksThresh(0.001, trials, trials) + 1.0/240
		if d := ksStat(jT, mT); d > thresh {
			t.Errorf("engine=%d: consensus-time KS %.4f > %.4f", engine, d, thresh)
		}
		if d := ksStat(jM, mM); d > thresh {
			t.Errorf("engine=%d: tick-count KS %.4f > %.4f", engine, d, thresh)
		}
	}
}

// TestLeapMatchesExactDistributions is the hybrid engine's half of the
// distributional-equivalence gate: at sizes where the exact count-collapsed
// engine is still affordable, the tau-leap engine's consensus-time and
// tick-count distributions must stay KS-close to the exact law. Unlike the
// per-node/occupancy gate (a collapse-correctness check, equal in law), the
// leap engine is approximate by design — the slack term budgets its O(Eps)
// leaping bias and its deterministic mean-rate clock on top of the usual
// KS sampling threshold. n = 10⁷ is trimmed under -short (the -race CI job
// runs -short). ODE handoff never engages below n = 10⁸ at the default
// threshold, so this pins the stochastic regimes; the ODE path is covered
// by the occupancy and meanfield package tests.
func TestLeapMatchesExactDistributions(t *testing.T) {
	cases := []struct {
		n      int64
		trials int
		short  bool // also runs under -short
	}{
		{1e5, 100, true},
		{1e6, 80, true},
		{1e7, 50, false},
	}
	for _, spec := range []string{"two-choices", "usd"} {
		run := runDynamicBySpec(spec)
		for _, c := range cases {
			if !c.short && testing.Short() {
				continue
			}
			counts := []int64{c.n / 2, c.n / 4, c.n / 4}
			occT, occM := runEngineTrials(t, run, counts, plurality.EngineOccupancy, plurality.Poisson, c.trials, 4100)
			leapT, leapM := runEngineTrials(t, run, counts, plurality.EngineLeap, plurality.Poisson, c.trials, 62000)
			thresh := ksThresh(0.001, c.trials, c.trials) + 0.12
			t.Logf("%s n=%g: timeKS=%.4f tickKS=%.4f thresh=%.4f", spec, float64(c.n), ksStat(occT, leapT), ksStat(occM, leapM), thresh)
			if d := ksStat(occT, leapT); d > thresh {
				t.Errorf("%s n=%g: consensus-time KS %.4f > %.4f", spec, float64(c.n), d, thresh)
			}
			if d := ksStat(occM, leapM); d > thresh {
				t.Errorf("%s n=%g: tick-count KS %.4f > %.4f", spec, float64(c.n), d, thresh)
			}
		}
	}
}

// TestCountsAPIMatchesPopulationRun: the O(k)-memory counts entry point and
// the population entry point drive the identical engine off the identical
// RNG streams, so for a fixed seed they must agree bit for bit.
func TestCountsAPIMatchesPopulationRun(t *testing.T) {
	counts := []int64{500, 250, 250}
	pop, err := plurality.NewPopulation(counts)
	if err != nil {
		t.Fatal(err)
	}
	fromPop, err := plurality.RunTwoChoicesAsync(pop,
		plurality.WithSeed(77), plurality.WithModel(plurality.Poisson))
	if err != nil {
		t.Fatal(err)
	}
	cs := append([]int64(nil), counts...)
	fromCounts, err := plurality.RunTwoChoicesCounts(cs,
		plurality.WithSeed(77), plurality.WithModel(plurality.Poisson))
	if err != nil {
		t.Fatal(err)
	}
	if fromPop != fromCounts {
		t.Fatalf("population run %+v != counts run %+v", fromPop, fromCounts)
	}
	if cs[fromCounts.Winner] != 1000 {
		t.Fatalf("counts not driven to consensus: %v", cs)
	}
	if !pop.ConsensusOn(fromPop.Winner) {
		t.Fatal("population not written back to consensus")
	}

	// The same bit-for-bit identity must hold for USD, whose undecided
	// state rides in the engine's hidden bucket on both paths.
	popU, err := plurality.NewPopulation(counts)
	if err != nil {
		t.Fatal(err)
	}
	fromPopU, err := plurality.RunDynamic("usd", popU,
		plurality.WithSeed(78), plurality.WithModel(plurality.Poisson))
	if err != nil {
		t.Fatal(err)
	}
	csU := append([]int64(nil), counts...)
	fromCountsU, err := plurality.RunDynamicCounts("usd", csU,
		plurality.WithSeed(78), plurality.WithModel(plurality.Poisson))
	if err != nil {
		t.Fatal(err)
	}
	if fromPopU != fromCountsU {
		t.Fatalf("usd population run %+v != counts run %+v", fromPopU, fromCountsU)
	}
	if csU[fromCountsU.Winner] != 1000 || !popU.ConsensusOn(fromPopU.Winner) {
		t.Fatalf("usd runs not driven to consensus: %v / %v", csU, popU.Counts())
	}
}

// TestCountsAPIChurnAndVoter covers the tick-mode paths of the counts API.
func TestCountsAPIChurnAndVoter(t *testing.T) {
	cs := []int64{600, 400}
	res, err := plurality.RunThreeMajorityCounts(cs,
		plurality.WithSeed(5), plurality.WithChurn(0.0002))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Churns == 0 {
		t.Fatalf("churned counts run: %+v", res)
	}
	cs2 := []int64{300, 200}
	res2, err := plurality.RunVoterCounts(cs2, plurality.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Done {
		t.Fatalf("voter counts run: %+v", res2)
	}
}

// TestEngineSelectionErrors pins the explicit-failure contract of
// EngineOccupancy and the counts API.
func TestEngineSelectionErrors(t *testing.T) {
	counts := []int64{50, 50}
	pop, err := plurality.NewPopulation(counts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := plurality.CycleGraph(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plurality.RunTwoChoicesAsync(pop,
		plurality.WithEngine(plurality.EngineOccupancy), plurality.WithGraph(g)); err == nil {
		t.Error("EngineOccupancy on a cycle: no error")
	}
	if _, err := plurality.RunTwoChoicesAsync(pop,
		plurality.WithEngine(plurality.EngineOccupancy),
		plurality.WithEdgeLatency(plurality.ExpEdgeLatency(1))); err == nil {
		t.Error("EngineOccupancy with edge latencies: no error")
	}
	if _, err := plurality.RunTwoChoicesCounts(counts,
		plurality.WithEngine(plurality.EnginePerNode)); err == nil {
		t.Error("counts API with EnginePerNode: no error")
	}
	if _, err := plurality.RunTwoChoicesCounts(counts,
		plurality.WithResponseDelay(2)); err == nil {
		t.Error("counts API with response delays: no error")
	}
	if _, err := plurality.RunTwoChoicesCounts([]int64{1}); err == nil {
		t.Error("degenerate histogram: no error")
	}
	if _, err := plurality.RunTwoChoicesCounts(counts,
		plurality.WithModel(plurality.HeapPoisson)); err == nil {
		t.Error("counts API with the O(n) HeapPoisson scheduler: no error")
	}
	// An effectively-unbounded MaxTime must still complete (tick-mode
	// fallback), not overflow the leap tick budget.
	cs := []int64{60, 40}
	if res, err := plurality.RunTwoChoicesCounts(cs,
		plurality.WithSeed(2), plurality.WithMaxTime(1e18)); err != nil || !res.Done {
		t.Errorf("huge MaxTime counts run: res=%+v err=%v", res, err)
	}
	// A latency-configured run must still work under EngineAuto — it
	// falls back to the per-node engine rather than erroring.
	pop2, err := plurality.NewPopulation([]int64{60, 40})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plurality.RunTwoChoicesAsync(pop2,
		plurality.WithSeed(4), plurality.WithEdgeLatency(plurality.ExpEdgeLatency(0.1))); err != nil {
		t.Errorf("EngineAuto latency fallback: %v", err)
	}
}
