package plurality

import (
	"context"
	"time"

	"plurality/internal/node"
)

// Transport selects the message fabric a node-runtime run executes on —
// the live-cluster counterpart of choosing a scheduler engine. Apply one
// with WithTransport (Job API) or NodeConfig.Transport (Cluster API). The
// interface is sealed: the implementations are NewChanTransport,
// NewLossyChanTransport and NewTCPTransport.
type Transport interface {
	// newNetwork builds one transport instance for an n-node cluster.
	newNetwork(n int, seed uint64) (node.Network, error)
}

// chanTransport is the in-process fabric: deterministic-seeded virtual
// time with optional latency/drop/reorder injection.
type chanTransport struct {
	faults node.Faults
}

func (t chanTransport) newNetwork(n int, seed uint64) (node.Network, error) {
	return node.NewFabric(n, seed, t.faults), nil
}

// NewChanTransport returns the in-process transport: nodes exchange real
// request/response messages through a conservative virtual-time fabric
// that dispatches one delivery at a time, so a cluster run is
// bit-deterministic for a fixed seed and its consensus-time distribution
// matches the simulator's Poisson-clock model exactly (the net-equivalence
// sweep gates this). This is the default transport.
func NewChanTransport() Transport {
	return chanTransport{}
}

// NetFaults configures message-level fault injection for
// NewLossyChanTransport. All draws come from a dedicated seeded stream, so
// a faulty cluster is exactly as deterministic as a clean one.
type NetFaults struct {
	// Latency is the mean of the exponential per-message delay in
	// parallel-time units, applied independently to each request and each
	// reply; 0 means instant delivery.
	Latency float64
	// Drop is the probability a message (request or reply) is lost; the
	// affected pull slot times out and the activation is wasted.
	Drop float64
	// Reorder is the probability a message draws a second independent
	// exponential delay, shuffling it behind later traffic.
	Reorder float64
}

// NewLossyChanTransport returns the in-process transport with seeded
// fault injection: exponential latency, drops, and reordering per
// NetFaults. Determinism is preserved — two runs with equal seeds and
// equal faults are bit-identical.
func NewLossyChanTransport(f NetFaults) Transport {
	return chanTransport{faults: node.Faults{Latency: f.Latency, Drop: f.Drop, Reorder: f.Reorder}}
}

// tcpTransport runs the whole cluster over real loopback sockets within
// this process.
type tcpTransport struct {
	unit time.Duration
}

func (t tcpTransport) newNetwork(n int, seed uint64) (node.Network, error) {
	return node.NewTCPMesh([]string{"127.0.0.1:0"}, 0, n, t.unit)
}

// NewTCPTransport returns the socket transport: every node in this
// process, pulling over real loopback TCP connections with the
// length-prefixed binary codec, clocks scaled so one parallel-time unit
// lasts unit of wall clock (0 means the 10ms default). TCP runs are
// subject to real scheduling noise, so they are gated end-to-end
// (consensus reached), not bit-for-bit; cross-process clusters are
// launched with cmd/pluralitynode instead.
func NewTCPTransport(unit time.Duration) Transport {
	return tcpTransport{unit: unit}
}

// WithTransport routes the job onto the node runtime: instead of the
// simulator's global scheduler, the run launches one goroutine-backed node
// per participant, each with a local Poisson clock, pulling sampled peers
// through t and stopping via a local termination gadget. Registry sampling
// dynamics only; options tied to simulator internals (adversaries,
// observers, delay models, engines, graphs, churn) are rejected by
// Validate with an explanation. The implied model is Poisson —
// WithModel(Poisson) is accepted, other models are rejected.
func WithTransport(t Transport) Option {
	return optionFunc(func(o *options) { o.mark(idTransport); o.transport = t })
}

// NodeConfig configures a Cluster: the direct, transport-first way to run
// a protocol as live message-passing processes (the Job API reaches the
// same runtime via WithTransport).
type NodeConfig struct {
	// Protocol is a registry protocol spec ("two-choices", "voter",
	// "3-majority", "usd", "j-majority:5").
	Protocol string
	// Counts is the initial opinion histogram (Counts[c] nodes of color c).
	Counts []int64
	// Seed roots every per-node rng stream; 0 means the default seed 1.
	Seed uint64
	// MaxTime is the parallel-time budget; 0 means DefaultMaxTime.
	MaxTime float64
	// PullTimeout is the per-pull reply timeout in parallel-time units;
	// 0 means the runtime default.
	PullTimeout float64
	// Transport is the message fabric; nil means NewChanTransport.
	Transport Transport
}

// Cluster is a compiled node-runtime run: n live nodes bound to a
// protocol, a seed family, and a transport. Build one with NewCluster and
// execute it with Run; a Cluster is immutable and safe to Run repeatedly
// (each Run builds a fresh transport instance and fresh nodes).
type Cluster struct {
	job     *Job
	timeout float64
}

// NewCluster compiles and validates a cluster run; see NodeConfig.
func NewCluster(cfg NodeConfig) (*Cluster, error) {
	tr := cfg.Transport
	if tr == nil {
		tr = NewChanTransport()
	}
	opts := []Option{WithModel(Poisson), WithTransport(tr)}
	if cfg.Seed != 0 {
		opts = append(opts, WithSeed(cfg.Seed))
	}
	if cfg.MaxTime > 0 {
		opts = append(opts, WithMaxTime(cfg.MaxTime))
	}
	job, err := NewJob(cfg.Protocol, cfg.Counts, opts...)
	if err != nil {
		return nil, err
	}
	return &Cluster{job: job, timeout: cfg.PullTimeout}, nil
}

// Job returns the underlying compiled job (useful for Trials fan-out).
func (c *Cluster) Job() *Job { return c.job }

// Run launches the cluster and blocks until it reaches consensus, hits its
// time budget, or ctx is canceled. The Report carries the same fields as a
// simulator run of the same protocol — ConsensusTime is the parallel time
// at which the last dissenting node flipped — plus Messages, the number of
// pull requests the cluster exchanged.
func (c *Cluster) Run(ctx context.Context) (Report, error) {
	return execCluster(ctx, c.job, c.job.o, c.timeout)
}

// execCluster is the node-runtime execution path shared by Cluster.Run and
// Job.Run-with-WithTransport: build a fresh transport instance, run the
// live nodes, convert the cluster result into the unified Report.
func execCluster(ctx context.Context, j *Job, o *options, pullTimeout float64) (Report, error) {
	rep := Report{Kind: KindDynamic, Protocol: j.spec}
	netw, err := o.transport.newNetwork(int(j.total), o.seed)
	if err != nil {
		return rep, err
	}
	res, err := node.Run(ctx, node.ClusterConfig{
		Rule:    j.rule,
		Counts:  j.counts,
		Seed:    o.seed,
		MaxTime: o.maxTime,
		Timeout: pullTimeout,
		Network: netw,
	})
	rep.Converged = res.Done
	rep.Winner = res.Winner
	rep.ConsensusTime = res.ConsensusTime
	rep.Time = res.Time
	rep.Ticks = res.Ticks
	rep.Undecided = res.Undecided
	rep.Messages = res.Messages
	return rep, ctxErr(ctx, err)
}
