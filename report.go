package plurality

// Kind classifies which runner family produced a Report (or which one a Job
// is bound to).
type Kind int

const (
	// KindCore is the paper's asynchronous core protocol (Theorem 1.3).
	KindCore Kind = iota + 1
	// KindDynamic is an asynchronous sampling dynamic from the protocol
	// registry, on either the per-node or the count-collapsed engine.
	KindDynamic
	// KindSyncDynamic is a sampling dynamic in the synchronous model
	// (discrete simultaneous rounds; WithModel(Synchronous)).
	KindSyncDynamic
	// KindOneExtraBit is the synchronous OneExtraBit protocol
	// (Theorem 1.2).
	KindOneExtraBit
)

// String returns the kind's stable textual name.
func (k Kind) String() string {
	switch k {
	case KindCore:
		return "core"
	case KindDynamic:
		return "dynamic"
	case KindSyncDynamic:
		return "sync-dynamic"
	case KindOneExtraBit:
		return "one-extra-bit"
	default:
		return "unknown"
	}
}

// Report is the unified result of any protocol run: every runner family —
// core, asynchronous and synchronous sampling dynamics, OneExtraBit — fills
// the shared fields, and the typed accessors (Core, Phases) expose the
// protocol-specific detail. The four legacy result types all convert into
// it via the ReportFrom… constructors, which is also how the Job API
// produces them.
//
// A Report is valid even for runs that failed to converge (time/round
// budget exhausted, context canceled): Converged is false and the
// progress-so-far fields describe where the run stopped.
type Report struct {
	// Kind identifies the runner family that produced the report.
	Kind Kind
	// Protocol is the resolved protocol spec ("core", "onebit", or a
	// registry spec such as "j-majority:5"); empty when the report was
	// converted directly from a legacy result.
	Protocol string
	// Converged reports whether the run reached consensus (all live nodes
	// agreeing on one color) within its budget.
	Converged bool
	// Winner is the consensus color if Converged, else the plurality when
	// the run ended.
	Winner Color
	// ConsensusTime is the parallel time at which consensus completed
	// (asynchronous runners; valid when Converged).
	ConsensusTime float64
	// Time is the parallel time of the last delivered activation
	// (asynchronous runners).
	Time float64
	// Rounds is the number of synchronous rounds executed (synchronous
	// runners; 0 for asynchronous ones).
	Rounds int
	// Ticks is the number of asynchronous activations delivered (0 for
	// synchronous runners).
	Ticks int64
	// Undecided is the number of nodes left in USD's undecided state when
	// the run ended; always 0 for rules without an undecided state.
	Undecided int64
	// Churns is the total number of churn events injected.
	Churns int64
	// Corruptions is the number of opinions the adversary rewrote:
	// corruption flips plus Byzantine lies (WithAdversary; 0 otherwise).
	Corruptions int64
	// Biased is the number of activations the adversary redirected or
	// suppressed (WithAdversary; 0 otherwise).
	Biased int64
	// Messages is the number of pull requests exchanged by a node-runtime
	// run (WithTransport / Cluster); 0 for simulator runs, which do not
	// pass messages at all. Deterministic on the in-process transport.
	Messages int64

	core   *CoreResult
	onebit *OneExtraBitResult
}

// Core returns the full core-protocol result (halt times, jump statistics,
// endgame safety) of a KindCore report; ok is false for any other kind.
func (r Report) Core() (res CoreResult, ok bool) {
	if r.core == nil {
		return CoreResult{}, false
	}
	return *r.core, true
}

// Phases returns the phase-structured detail (phase and round counts) of a
// KindOneExtraBit report; ok is false for any other kind. Per-phase
// trajectories are available through WithPhaseObserver or WithObserver.
func (r Report) Phases() (res OneExtraBitResult, ok bool) {
	if r.onebit == nil {
		return OneExtraBitResult{}, false
	}
	return *r.onebit, true
}

// ReportFromCore converts a legacy core result into the unified Report.
func ReportFromCore(res CoreResult) Report {
	return Report{
		Kind:          KindCore,
		Converged:     res.Done,
		Winner:        res.Winner,
		ConsensusTime: res.ConsensusTime,
		Time:          res.Time,
		Ticks:         res.Ticks,
		Churns:        res.Churns,
		Corruptions:   res.Corruptions,
		Biased:        res.Biased,
		core:          &res,
	}
}

// ReportFromAsync converts a legacy asynchronous-dynamics result into the
// unified Report.
func ReportFromAsync(res AsyncResult) Report {
	rep := Report{
		Kind:        KindDynamic,
		Converged:   res.Done,
		Winner:      res.Winner,
		Time:        res.Time,
		Ticks:       res.Ticks,
		Undecided:   res.Undecided,
		Churns:      res.Churns,
		Corruptions: res.Corruptions,
		Biased:      res.Biased,
	}
	if res.Done {
		// The asynchronous dynamics complete consensus on their final tick.
		rep.ConsensusTime = res.Time
	}
	return rep
}

// ReportFromSync converts a legacy synchronous-dynamics result into the
// unified Report.
func ReportFromSync(res SyncResult) Report {
	return Report{
		Kind:        KindSyncDynamic,
		Converged:   res.Done,
		Winner:      res.Winner,
		Rounds:      res.Rounds,
		Undecided:   res.Undecided,
		Corruptions: res.Corruptions,
		Biased:      res.Biased,
	}
}

// ReportFromOneExtraBit converts a legacy OneExtraBit result into the
// unified Report.
func ReportFromOneExtraBit(res OneExtraBitResult) Report {
	return Report{
		Kind:      KindOneExtraBit,
		Converged: res.Done,
		Winner:    res.Winner,
		Rounds:    res.Rounds,
		onebit:    &res,
	}
}
