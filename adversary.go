package plurality

import (
	"plurality/internal/adversary"
)

// Adversary-facing re-exports. The adversary engine makes worst-case
// behavior a first-class scenario axis: bounded-budget scheduling bias,
// state corruption and Byzantine sampling, each deterministic per seed on a
// dedicated RNG stream (see WithAdversary).
type (
	// AdversarySpec selects an adversary for a run: a registry name, the
	// budget f and — for lag-parameterized adversaries ("late") — the
	// observation lag ℓ. The zero spec, the name "none" and a zero budget
	// all select no adversary; an inactive spec installs no hooks and
	// consumes no randomness, so it is bit-identical to not passing
	// WithAdversary at all.
	AdversarySpec = adversary.Spec

	// AdversaryDescriptor describes one registered adversary: names,
	// family, behavior summary, source model and the capability flags
	// Job.Validate enforces per engine. See Adversaries.
	AdversaryDescriptor = adversary.Descriptor

	// AdversaryFamily classifies an adversary's powers: scheduling,
	// corruption or byzantine.
	AdversaryFamily = adversary.Family
)

// Adversary family values.
const (
	// AdversaryScheduling biases or suppresses activations, never state.
	AdversaryScheduling = adversary.FamilyScheduling
	// AdversaryCorruption rewrites node opinions under a per-window budget.
	AdversaryCorruption = adversary.FamilyCorruption
	// AdversaryByzantine lies inside the sampling path under a node budget.
	AdversaryByzantine = adversary.FamilyByzantine
)

// Adversaries returns the registry of adversaries in presentation order:
// minority-bias, delay-set, late, corrupt and byzantine. Every name-based
// entry point — WithAdversary via ParseAdversary, the experiment harness's
// adversary axis, the CLIs' -adversary flags — resolves against this
// registry, mirroring Protocols for the protocol registry.
func Adversaries() []AdversaryDescriptor { return adversary.Registry() }

// ParseAdversary resolves a textual adversary spec — "name", or
// "name:<lag>" for the lag-parameterized adversaries (e.g. "late:2") — into
// an AdversarySpec with no budget; set Budget before passing the spec to
// WithAdversary. Aliases canonicalize ("liar" → "byzantine"); "" and "none"
// parse to the inactive spec.
func ParseAdversary(spec string) (AdversarySpec, error) { return adversary.Parse(spec) }

// LookupAdversary resolves an adversary name or alias against the registry
// without running anything, mirroring LookupProtocol.
func LookupAdversary(name string) (AdversaryDescriptor, bool) { return adversary.ByName(name) }
