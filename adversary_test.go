package plurality

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func mustCounts(t *testing.T, n, k int) []int64 {
	t.Helper()
	counts, err := Biased(n, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	return counts
}

func advSpec(t *testing.T, s string, budget int64) AdversarySpec {
	t.Helper()
	spec, err := ParseAdversary(s)
	if err != nil {
		t.Fatal(err)
	}
	spec.Budget = budget
	return spec
}

// TestAdversaryRegistryExports: the public re-exports resolve the same
// registry the engines use.
func TestAdversaryRegistryExports(t *testing.T) {
	if len(Adversaries()) != 5 {
		t.Fatalf("Adversaries() lists %d entries, want 5", len(Adversaries()))
	}
	d, ok := LookupAdversary("liar")
	if !ok || d.Name != "byzantine" || d.Family != AdversaryByzantine {
		t.Fatalf("LookupAdversary(liar) = %+v, %v", d, ok)
	}
	if _, ok := LookupAdversary("bogus"); ok {
		t.Fatal("LookupAdversary accepted an unknown name")
	}
}

// TestJobRejectsIncapableAdversaryPairs: every engine/family combination
// the engines cannot host must fail at NewJob, not at run time.
func TestJobRejectsIncapableAdversaryPairs(t *testing.T) {
	counts := mustCounts(t, 1024, 2)
	for _, tc := range []struct {
		name    string
		spec    string
		opts    []Option
		adv     AdversarySpec
		wantErr string
	}{
		{
			name: "leap engine rejects adversaries wholesale (mask)",
			spec: "two-choices", opts: []Option{WithEngine(EngineLeap)},
			adv:     advSpec(t, "corrupt", 8),
			wantErr: "WithAdversary",
		},
		{
			name:    "onebit rejects adversaries wholesale (mask)",
			spec:    "onebit",
			adv:     advSpec(t, "corrupt", 8),
			wantErr: "WithAdversary",
		},
		{
			name:    "core rejects byzantine lying",
			spec:    "core",
			adv:     advSpec(t, "byzantine", 8),
			wantErr: "no lying channel",
		},
		{
			name: "synchronous rounds reject scheduling bias",
			spec: "two-choices", opts: []Option{WithModel(Synchronous)},
			adv:     advSpec(t, "minority-bias", 8),
			wantErr: "no activation order",
		},
		{
			name: "occupancy rejects per-node victim sets",
			spec: "two-choices", opts: []Option{WithEngine(EngineOccupancy)},
			adv:     advSpec(t, "delay-set", 8),
			wantErr: "does not track",
		},
		{
			name:    "late needs a lag",
			spec:    "two-choices",
			adv:     AdversarySpec{Name: "late", Budget: 8},
			wantErr: "needs a positive lag",
		},
		{
			name:    "negative budget",
			spec:    "two-choices",
			adv:     AdversarySpec{Name: "corrupt", Budget: -1},
			wantErr: "budget",
		},
	} {
		opts := append([]Option{WithSeed(1)}, tc.opts...)
		opts = append(opts, WithAdversary(tc.adv))
		_, err := NewJob(tc.spec, counts, opts...)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: NewJob err = %v, want error containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestJobAcceptsCapableAdversaryPairs: the supported matrix compiles.
func TestJobAcceptsCapableAdversaryPairs(t *testing.T) {
	counts := mustCounts(t, 1024, 2)
	for _, tc := range []struct {
		name string
		spec string
		opts []Option
		adv  AdversarySpec
	}{
		{name: "core + scheduling", spec: "core", adv: advSpec(t, "minority-bias", 8)},
		{name: "core + corruption", spec: "core", adv: advSpec(t, "corrupt", 8)},
		{name: "per-node + byzantine", spec: "two-choices", adv: advSpec(t, "byzantine", 8)},
		{name: "per-node + delay-set", spec: "two-choices", opts: []Option{WithEngine(EnginePerNode)}, adv: advSpec(t, "delay-set", 8)},
		{name: "per-node + late", spec: "two-choices", adv: advSpec(t, "late:2", 8)},
		{name: "occupancy + corrupt", spec: "two-choices", opts: []Option{WithEngine(EngineOccupancy)}, adv: advSpec(t, "corrupt", 8)},
		{name: "occupancy + byzantine", spec: "voter", opts: []Option{WithEngine(EngineOccupancy)}, adv: advSpec(t, "byzantine", 8)},
		{name: "sync + corrupt", spec: "3-majority", opts: []Option{WithModel(Synchronous)}, adv: advSpec(t, "corrupt", 8)},
		{name: "sync + byzantine", spec: "3-majority", opts: []Option{WithModel(Synchronous)}, adv: advSpec(t, "byzantine", 8)},
		{name: "zero budget is inactive and fine anywhere", spec: "core", adv: advSpec(t, "byzantine", 0)},
	} {
		opts := append([]Option{WithSeed(1)}, tc.opts...)
		opts = append(opts, WithAdversary(tc.adv))
		if _, err := NewJob(tc.spec, counts, opts...); err != nil {
			t.Errorf("%s: NewJob: %v", tc.name, err)
		}
	}
}

// reportFields flattens the comparable outcome of a report.
type reportFields struct {
	converged   bool
	winner      Color
	time        float64
	ticks       int64
	rounds      int
	corruptions int64
	biased      int64
}

func fieldsOf(rep Report) reportFields {
	return reportFields{rep.Converged, rep.Winner, rep.Time, rep.Ticks, rep.Rounds, rep.Corruptions, rep.Biased}
}

// TestZeroBudgetBitIdentity: on every engine, a zero-budget adversary is
// bit-identical to not passing WithAdversary at all — no hooks, no RNG
// draws, same trajectory tick for tick.
func TestZeroBudgetBitIdentity(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec string
		opts []Option
	}{
		{name: "core", spec: "core"},
		{name: "per-node", spec: "two-choices", opts: []Option{WithEngine(EnginePerNode), WithModel(Poisson)}},
		{name: "occupancy", spec: "two-choices", opts: []Option{WithEngine(EngineOccupancy), WithModel(Poisson)}},
		{name: "auto", spec: "3-majority", opts: []Option{WithModel(Poisson)}},
		{name: "sync", spec: "two-choices", opts: []Option{WithModel(Synchronous)}},
	} {
		counts := mustCounts(t, 2048, 2)
		run := func(extra ...Option) Report {
			t.Helper()
			job, err := NewJob(tc.spec, counts, append(append([]Option{WithSeed(7)}, tc.opts...), extra...)...)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := job.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		clean := run()
		zero := run(WithAdversary(advSpec(t, "corrupt", 0)))
		if fieldsOf(clean) != fieldsOf(zero) {
			t.Errorf("%s: zero-budget adversary perturbed the run:\n  clean: %+v\n  zero:  %+v",
				tc.name, fieldsOf(clean), fieldsOf(zero))
		}
		if zero.Corruptions != 0 || zero.Biased != 0 {
			t.Errorf("%s: inactive adversary recorded interventions: %+v", tc.name, fieldsOf(zero))
		}
	}
}

// TestAdversaryCountersSurface: each family's counters reach the public
// Report on the engines that host it.
func TestAdversaryCountersSurface(t *testing.T) {
	for _, tc := range []struct {
		name        string
		spec        string
		opts        []Option
		adv         AdversarySpec
		corruptions bool
		biased      bool
	}{
		{name: "per-node corrupt", spec: "two-choices", opts: []Option{WithEngine(EnginePerNode), WithModel(Poisson)}, adv: advSpec(t, "corrupt", 8), corruptions: true},
		{name: "per-node byzantine", spec: "two-choices", opts: []Option{WithEngine(EnginePerNode), WithModel(Poisson)}, adv: advSpec(t, "byzantine", 512), corruptions: true},
		{name: "per-node minority-bias", spec: "two-choices", opts: []Option{WithEngine(EnginePerNode), WithModel(Poisson)}, adv: advSpec(t, "minority-bias", 16), biased: true},
		{name: "per-node delay-set", spec: "two-choices", opts: []Option{WithEngine(EnginePerNode), WithModel(Poisson)}, adv: advSpec(t, "delay-set", 256), biased: true},
		{name: "occupancy corrupt", spec: "two-choices", opts: []Option{WithEngine(EngineOccupancy), WithModel(Poisson)}, adv: advSpec(t, "corrupt", 8), corruptions: true},
		{name: "sync corrupt", spec: "two-choices", opts: []Option{WithModel(Synchronous)}, adv: advSpec(t, "corrupt", 8), corruptions: true},
		{name: "core corrupt", spec: "core", adv: advSpec(t, "corrupt", 8), corruptions: true},
		{name: "core minority-bias", spec: "core", adv: advSpec(t, "minority-bias", 16), biased: true},
	} {
		counts := mustCounts(t, 2048, 2)
		job, err := NewJob(tc.spec, counts, append(append([]Option{WithSeed(3)}, tc.opts...), WithAdversary(tc.adv))...)
		if err != nil {
			t.Fatalf("%s: NewJob: %v", tc.name, err)
		}
		rep, err := job.Run(context.Background())
		if err != nil && !errors.Is(err, ErrNoConsensus) && !errors.Is(err, ErrTimeLimit) {
			t.Fatalf("%s: Run: %v", tc.name, err)
		}
		if tc.corruptions && rep.Corruptions == 0 {
			t.Errorf("%s: adversary ran but Report.Corruptions = 0 (biased = %d)", tc.name, rep.Biased)
		}
		if tc.biased && rep.Biased == 0 {
			t.Errorf("%s: adversary ran but Report.Biased = 0 (corruptions = %d)", tc.name, rep.Corruptions)
		}
	}
}

// TestAdversaryTrialsDeterministic: pooled trials under an adversary are a
// pure function of the seed — each trial constructs its own adversary from
// its derived trial seed.
func TestAdversaryTrialsDeterministic(t *testing.T) {
	counts := mustCounts(t, 1024, 2)
	run := func() []Report {
		job, err := NewJob("two-choices", counts,
			WithSeed(11), WithModel(Poisson), WithEngine(EnginePerNode),
			WithAdversary(advSpec(t, "corrupt", 6)))
		if err != nil {
			t.Fatal(err)
		}
		reps, err := job.Trials(context.Background(), 4)
		if err != nil {
			t.Fatal(err)
		}
		return reps
	}
	a, b := run(), run()
	distinct := false
	for i := range a {
		if fieldsOf(a[i]) != fieldsOf(b[i]) {
			t.Fatalf("trial %d diverged across identical runs:\n  %+v\n  %+v", i, fieldsOf(a[i]), fieldsOf(b[i]))
		}
		if a[i].Corruptions == 0 {
			t.Errorf("trial %d ran adversary-free", i)
		}
		if i > 0 && fieldsOf(a[i]) != fieldsOf(a[0]) {
			distinct = true
		}
	}
	if !distinct {
		t.Error("all trials produced identical reports; trial seeds are not deriving")
	}
}
