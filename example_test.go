package plurality_test

import (
	"fmt"
	"log"

	"plurality"
)

// The canonical use: build a biased population, run the paper's
// asynchronous protocol, read off the winner.
func ExampleRunCore() {
	counts, err := plurality.Biased(10_000, 8, 0.5) // c1 = 1.5*c2
	if err != nil {
		log.Fatal(err)
	}
	pop, err := plurality.NewPopulation(counts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := plurality.RunCore(pop, plurality.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("winner: color %d\n", res.Winner)
	fmt.Printf("unanimous: %v\n", pop.ConsensusOn(res.Winner))
	// Output:
	// winner: color 0
	// unanimous: true
}

// Workload constructors realize the regimes of the paper's theorems.
func ExampleBiased() {
	counts, err := plurality.Biased(1000, 4, 1.0) // c1 = 2*c2
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(counts)
	// Output:
	// [400 200 200 200]
}

// The synchronous Two-Choices dynamic of Theorem 1.1.
func ExampleRunTwoChoicesSync() {
	counts, err := plurality.GapSqrt(5000, 4, 2) // gap 2*sqrt(n ln n)
	if err != nil {
		log.Fatal(err)
	}
	pop, err := plurality.NewPopulation(counts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := plurality.RunTwoChoicesSync(pop, plurality.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plurality won: %v\n", res.Winner == 0)
	// Output:
	// plurality won: true
}

// PlanCore inspects the Θ(log n)-sized schedule without running anything.
func ExamplePlanCore() {
	spec, err := plurality.PlanCore(100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase length: %d ticks (7 blocks of Delta=%d)\n", spec.PhaseTicks, spec.Delta)
	fmt.Printf("part 1: %d phases\n", spec.Phases)
	// Output:
	// phase length: 336 ticks (7 blocks of Delta=48)
	// part 1: 8 phases
}
