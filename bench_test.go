// Benchmark entry points, one per reproduced experiment table (E1–E12 plus
// the AB1–AB3 ablations): each iteration regenerates that experiment's
// table on its reduced (quick) grid, so
//
//	go test -bench=BenchmarkE6 -benchmem
//
// re-runs the main theorem's measurement end to end. The full tables in
// EXPERIMENTS.md come from `go run ./cmd/experiments -run all`.
//
// The BenchmarkProtocol* group measures single protocol runs at a fixed
// size, for profiling the simulators themselves.
package plurality_test

import (
	"io"
	"testing"

	"plurality"
	"plurality/internal/bench"
)

// benchExperiment runs one registered experiment per iteration on the
// reduced grid, with tables discarded.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(bench.Config{Out: io.Discard, Quick: true, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1TwoChoicesUpper(b *testing.B)       { benchExperiment(b, "e1") }
func BenchmarkE2TwoChoicesLower(b *testing.B)       { benchExperiment(b, "e2") }
func BenchmarkE3SmallBiasUpset(b *testing.B)        { benchExperiment(b, "e3") }
func BenchmarkE4OneExtraBit(b *testing.B)           { benchExperiment(b, "e4") }
func BenchmarkE5QuadraticGrowth(b *testing.B)       { benchExperiment(b, "e5") }
func BenchmarkE6AsyncLogTime(b *testing.B)          { benchExperiment(b, "e6") }
func BenchmarkE7SyncGadget(b *testing.B)            { benchExperiment(b, "e7") }
func BenchmarkE8ClockConcentration(b *testing.B)    { benchExperiment(b, "e8") }
func BenchmarkE9Endgame(b *testing.B)               { benchExperiment(b, "e9") }
func BenchmarkE10PolyaUrn(b *testing.B)             { benchExperiment(b, "e10") }
func BenchmarkE11ModelEquivalence(b *testing.B)     { benchExperiment(b, "e11") }
func BenchmarkE12ResponseDelays(b *testing.B)       { benchExperiment(b, "e12") }
func BenchmarkAB1DeltaAblation(b *testing.B)        { benchExperiment(b, "ab1") }
func BenchmarkAB2GadgetSampleAblation(b *testing.B) { benchExperiment(b, "ab2") }
func BenchmarkAB3EndgameAblation(b *testing.B)      { benchExperiment(b, "ab3") }

// --- single-run protocol benchmarks (simulator profiling) ----------------

func BenchmarkProtocolCore(b *testing.B) {
	counts, err := plurality.Biased(4000, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pop, err := plurality.NewPopulation(counts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plurality.RunCore(pop, plurality.WithSeed(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtocolTwoChoicesSync(b *testing.B) {
	counts, err := plurality.GapSqrt(8000, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pop, err := plurality.NewPopulation(counts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plurality.RunTwoChoicesSync(pop, plurality.WithSeed(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtocolTwoChoicesAsync(b *testing.B) {
	counts, err := plurality.Biased(8000, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pop, err := plurality.NewPopulation(counts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plurality.RunTwoChoicesAsync(pop, plurality.WithSeed(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtocolOneExtraBit(b *testing.B) {
	counts, err := plurality.GapSqrtPolylog(8000, 8, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pop, err := plurality.NewPopulation(counts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plurality.RunOneExtraBit(pop, plurality.WithSeed(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}
