package plurality

import "testing"

// TestRunCoreTrialsDeterministicAcrossWorkers: the multi-trial driver must
// be a pure function of (counts, trials, seed) — the worker count only
// changes wall-clock time, never results.
func TestRunCoreTrialsDeterministicAcrossWorkers(t *testing.T) {
	counts, err := Biased(2000, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 6
	run := func(workers int) []CoreResult {
		res, err := RunCoreTrials(counts, trials, WithSeed(9), WithTrialWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial := run(1)
	for _, workers := range []int{0, 2, 7} {
		parallel := run(workers)
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("workers=%d trial %d: %+v != %+v", workers, i, parallel[i], serial[i])
			}
		}
	}

	// Distinct trials must use decorrelated streams: at least one result
	// field should differ between some pair of trials.
	allSame := true
	for i := 1; i < trials; i++ {
		if serial[i] != serial[0] {
			allSame = false
		}
	}
	if allSame {
		t.Error("all trials produced identical results; per-trial seeds look correlated")
	}
}

// TestRunCoreTrialsFirstTrialMatchesRunCore: trial 0 keeps the base seed,
// so a 1-trial multi-run is exactly RunCore.
func TestRunCoreTrialsFirstTrialMatchesRunCore(t *testing.T) {
	counts, err := Biased(1500, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := NewPopulation(counts)
	if err != nil {
		t.Fatal(err)
	}
	single, err := RunCore(pop, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunCoreTrials(counts, 3, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if many[0] != single {
		t.Fatalf("trial 0 %+v != RunCore %+v", many[0], single)
	}
}

func TestRunCoreTrialsValidation(t *testing.T) {
	counts, err := Biased(100, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCoreTrials(counts, 0); err == nil {
		t.Error("trials=0 should fail")
	}
}

func TestRunCoreHeapPoissonModel(t *testing.T) {
	counts, err := Biased(800, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := NewPopulation(counts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCore(pop, WithSeed(2), WithModel(HeapPoisson))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("heap-poisson run failed: %+v", res)
	}
}
