package plurality

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"

	"plurality/internal/adversary"
	"plurality/internal/core"
	"plurality/internal/graph"
	"plurality/internal/occupancy"
	"plurality/internal/par"
	"plurality/internal/protocols"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/protocols/onebit"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// Job is a validated, reusable binding of protocol spec × initial counts ×
// options — the v2 run API. Compile one with NewJob, then execute it any
// number of times:
//
//	job, err := plurality.NewJob("two-choices", counts,
//		plurality.WithSeed(7), plurality.WithModel(plurality.Poisson))
//	rep, err := job.Run(ctx)          // one run
//	reps, err := job.Trials(ctx, 100) // pooled parallel trials
//
// The spec is "core" (Theorem 1.3's asynchronous protocol), "onebit" (alias
// "one-extra-bit"; Theorem 1.2), or any registry protocol spec —
// "two-choices", "voter", "3-majority", "usd", "j-majority:5" (see
// Protocols). Registry protocols run asynchronously by default and
// synchronously under WithModel(Synchronous); with WithEngine(
// EngineOccupancy) they execute count-collapsed in O(k) memory without ever
// materializing a per-node population.
//
// Unlike the legacy RunX entry points, NewJob validates eagerly: options the
// selected runner would silently ignore are rejected (see Validate), as are
// malformed counts, unknown protocols and bad parameters. Execution is
// context-aware — cancellation and deadlines are honored inside every
// engine loop — and a Job is immutable after construction, so it is safe to
// share across goroutines (each Run builds fresh run state).
type Job struct {
	spec   string
	kind   Kind
	counts []int64
	total  int64
	o      *options
	desc   protocols.Descriptor // registry protocols only
	rule   dynamics.Rule        // registry protocols only
}

// NewJob compiles and validates a job; see Job for the spec syntax. counts
// is copied, so the caller's slice stays untouched by later runs.
func NewJob(spec string, counts []int64, opts ...Option) (*Job, error) {
	j, err := newJob(spec, counts, newOptions(opts))
	if err != nil {
		return nil, err
	}
	if err := j.Validate(); err != nil {
		return nil, err
	}
	return j, nil
}

// newJob resolves the spec and binds the counts without the strict option
// validation (the legacy shims accept — and ignore — foreign options, which
// Validate would reject).
func newJob(spec string, counts []int64, o *options) (*Job, error) {
	j := &Job{spec: spec, counts: slices.Clone(counts), o: o}
	for _, v := range j.counts {
		j.total += v
	}
	switch spec {
	case "core":
		j.kind = KindCore
	case "onebit", "one-extra-bit":
		j.kind = KindOneExtraBit
	default:
		d, rule, err := protocols.Lookup(spec)
		if err != nil {
			return nil, err
		}
		j.desc, j.rule = d, rule
		if o.model == Synchronous {
			j.kind = KindSyncDynamic
		} else {
			j.kind = KindDynamic
		}
	}
	return j, nil
}

// Kind returns the runner family the job is bound to.
func (j *Job) Kind() Kind { return j.kind }

// Protocol returns the protocol spec the job was compiled from.
func (j *Job) Protocol() string { return j.spec }

// N returns the total number of nodes (the histogram total).
func (j *Job) N() int64 { return j.total }

// countsPath reports whether the job executes directly on the histogram
// (O(k) memory, no per-node population): an asynchronous dynamic with the
// occupancy or leap engine required.
func (j *Job) countsPath() bool {
	return j.kind == KindDynamic && (j.o.engine == EngineOccupancy || j.o.engine == EngineLeap)
}

// Per-kind masks of the options each runner actually consumes; everything
// outside the mask is rejected by Validate instead of silently dropped.
var (
	commonOptMask = maskOf(idSeed, idTrialWorkers, idObserver)
	coreOptMask   = commonOptMask | maskOf(idModel, idMaxTime, idResponseDelay,
		idEdgeLatency, idChurn, idGraph, idProbe, idDelta, idPhases,
		idGadgetSamples, idEndgameTicks, idNoSyncGadget, idEndgameOnly,
		idRunToHalt, idCrashes, idDesync, idAdversary)
	asyncOptMask = commonOptMask | maskOf(idModel, idMaxTime, idResponseDelay,
		idEdgeLatency, idChurn, idGraph, idEngine, idAdversary)
	countsOptMask = commonOptMask | maskOf(idModel, idMaxTime, idChurn,
		idGraph, idEngine, idAdversary)
	// The hybrid leap engine is churn-free and adversary-free by
	// construction (both break its flow laws), and its two error-budget
	// knobs apply only to it.
	leapOptMask = commonOptMask | maskOf(idModel, idMaxTime, idGraph,
		idEngine, idLeapEps, idODEThreshold)
	syncOptMask   = commonOptMask | maskOf(idModel, idMaxRounds, idGraph, idAdversary)
	oneBitOptMask = commonOptMask | maskOf(idGraph, idMaxRounds, idMaxPhases,
		idPropagationRounds, idPhaseObserver)
	// The node runtime (WithTransport) executes registry dynamics as live
	// message-passing processes; it consumes only the options a real
	// cluster can honor — note idObserver is out (no global tick stream to
	// snapshot from).
	nodeOptMask = maskOf(idSeed, idTrialWorkers, idModel, idMaxTime, idTransport)
)

// nodeOptReasons maps each simulator-only option to why the node runtime
// cannot honor it, mirroring the leap engine's optID-mask rejections but
// with per-option explanations: a live cluster has no global scheduler,
// no global view, and owns its delay model through the transport.
var nodeOptReasons = map[optID]string{
	idMaxRounds:     "rounds are a synchronous-model notion; live nodes run on local Poisson clocks",
	idResponseDelay: "response delays are a transport property on the node runtime; inject latency with NewLossyChanTransport",
	idEdgeLatency:   "edge latencies are a transport property on the node runtime; inject latency with NewLossyChanTransport",
	idChurn:         "churn rewrites the simulator's engine state mid-run; a live node cannot be re-randomized from outside",
	idEngine:        "engines select simulator execution strategies; the node runtime is its own execution path",
	idGraph:         "the node runtime samples the complete graph (every peer addressable); topologies are simulator-only",
	idObserver:      "snapshot observation rides the simulator's global tick hook (OnTick); a live cluster has no global view to sample",
	idCrashes:       "crash schedules are applied by the simulator's scheduler, which the node runtime replaces",
	idDesync:        "desynchronized starts are a core-protocol scheduler feature, not a cluster one",
	idLeapEps:       "the leap engine's error budget does not apply off the simulator",
	idODEThreshold:  "the leap engine's ODE handoff does not apply off the simulator",
	idAdversary:     "adversaries instrument the simulator's global scheduler and engine state, which live nodes do not share",
}

// Validate checks the job end to end without running anything: the counts
// (shape, totals, per-engine limits), the protocol parameters, the graph
// binding, and — unlike the legacy RunX entry points, which silently drop
// options their runner does not consume — that every applied option is one
// the selected runner/engine actually uses.
func (j *Job) Validate() error {
	if j.o.set&maskOf(idTransport) != 0 {
		if err := j.validateNodeRuntime(); err != nil {
			return err
		}
	}
	var allowed uint32
	switch j.kind {
	case KindCore:
		allowed = coreOptMask
	case KindDynamic:
		switch {
		case j.o.set&maskOf(idTransport) != 0:
			allowed = nodeOptMask
		case j.o.engine == EngineOccupancy:
			allowed = countsOptMask
		case j.o.engine == EngineLeap:
			allowed = leapOptMask
		default:
			allowed = asyncOptMask
		}
	case KindSyncDynamic:
		allowed = syncOptMask
	case KindOneExtraBit:
		allowed = oneBitOptMask
	default:
		return fmt.Errorf("plurality: job %q has unknown kind %d", j.spec, j.kind)
	}
	if bad := j.o.set &^ allowed; bad != 0 {
		var names []string
		for id := optID(0); id < numOptIDs; id++ {
			if bad&(1<<id) != 0 {
				names = append(names, optNames[id])
			}
		}
		return fmt.Errorf("plurality: a %s job (%s) does not use %s; the option(s) would be silently ignored",
			j.kind, j.spec, strings.Join(names, ", "))
	}

	// Counts: non-negative, a workable total that fits the schedulers'
	// node index.
	if len(j.counts) == 0 {
		return fmt.Errorf("plurality: job %s has no initial counts", j.spec)
	}
	for c, v := range j.counts {
		if v < 0 {
			return fmt.Errorf("plurality: job %s: negative count %d for color %d", j.spec, v, c)
		}
	}
	if j.total < 2 {
		return fmt.Errorf("plurality: job %s: histogram total %d, want >= 2", j.spec, j.total)
	}
	if j.total != int64(int(j.total)) {
		return fmt.Errorf("plurality: job %s: histogram total %d overflows the node index", j.spec, j.total)
	}
	if g := j.o.graph; g != nil && int64(g.N()) != j.total {
		return fmt.Errorf("plurality: job %s: graph has %d nodes, histogram %d", j.spec, g.N(), j.total)
	}
	if err := j.validateAdversary(); err != nil {
		return err
	}

	switch j.kind {
	case KindCore:
		if j.o.model == Synchronous {
			return errors.New("plurality: the core protocol is asynchronous; WithModel(Synchronous) applies to registry sampling dynamics")
		}
		if _, err := core.Plan(j.o.coreConfig(nil), int(j.total)); err != nil {
			return err
		}
	case KindDynamic:
		if j.o.engine == EngineOccupancy || j.o.engine == EngineLeap {
			if _, err := j.desc.ValidateCounts(j.counts, j.o.model == HeapPoisson); err != nil {
				return err
			}
			// Counts runs execute count-collapsed by definition: the clique
			// collapses to the color histogram, a degree-class lumpable
			// (graph.Classed) topology to the class × color matrix. Quenched
			// non-complete topologies have neither symmetry, and the leap
			// engine's flow laws are clique-only.
			if g := j.o.graph; g != nil {
				_, complete := g.(graph.Complete)
				_, classed := g.(graph.Classed)
				if j.o.engine == EngineLeap && !complete {
					return fmt.Errorf("plurality: job %s: the leap engine needs the complete graph, got %T", j.spec, g)
				}
				if !complete && !classed {
					return fmt.Errorf("plurality: job %s: a counts job needs the complete graph or a degree-class lumpable topology (AnnealedRegularGraph, AnnealedGraph), got %T", j.spec, g)
				}
			}
		}
		if j.o.engine == EngineLeap {
			if !j.desc.Leapable {
				return fmt.Errorf("plurality: job %s: protocol %s has no flow law; the leap engine needs one", j.spec, j.desc.Name)
			}
			if j.o.model == HeapPoisson {
				return fmt.Errorf("plurality: job %s: the leap engine needs the Sequential or Poisson model", j.spec)
			}
			if e := j.o.leapEps; j.o.set&maskOf(idLeapEps) != 0 && (math.IsNaN(e) || e <= 0 || e > 0.5) {
				return fmt.Errorf("plurality: job %s: WithLeapEpsilon(%v), want (0, 0.5]", j.spec, e)
			}
			if th := j.o.odeTheta; j.o.set&maskOf(idODEThreshold) != 0 && (math.IsNaN(th) || th >= 1) {
				return fmt.Errorf("plurality: job %s: WithODEThreshold(%v), want < 1 (0 disables the ODE regime)", j.spec, th)
			}
		}
	case KindSyncDynamic:
		if j.o.maxRounds <= 0 {
			return fmt.Errorf("plurality: job %s: MaxRounds = %d, want > 0", j.spec, j.o.maxRounds)
		}
	}
	if j.kind != KindSyncDynamic && j.kind != KindOneExtraBit {
		if j.o.maxTime <= 0 {
			return fmt.Errorf("plurality: job %s: MaxTime = %v, want > 0", j.spec, j.o.maxTime)
		}
		if math.IsNaN(j.o.maxTime) {
			return fmt.Errorf("plurality: job %s: MaxTime is NaN", j.spec)
		}
	}
	return nil
}

// validateNodeRuntime checks a WithTransport job beyond the optID mask:
// only registry sampling dynamics can run as live clusters, the implied
// communication model is per-node Poisson clocks, and every simulator-only
// option is rejected with its mapped reason so the caller learns why the
// node runtime cannot honor it instead of getting a bare mask error.
func (j *Job) validateNodeRuntime() error {
	if j.o.transport == nil {
		return fmt.Errorf("plurality: job %s: WithTransport(nil); the node runtime needs a transport (NewChanTransport, NewLossyChanTransport, NewTCPTransport)", j.spec)
	}
	if j.kind != KindDynamic {
		return fmt.Errorf("plurality: job %s: the node runtime (WithTransport) runs asynchronous registry sampling dynamics only (two-choices, voter, 3-majority, usd, j-majority); a %s job executes on the simulator", j.spec, j.kind)
	}
	if bad := j.o.set &^ nodeOptMask; bad != 0 {
		var parts []string
		for id := optID(0); id < numOptIDs; id++ {
			if bad&(1<<id) == 0 {
				continue
			}
			reason := nodeOptReasons[id]
			if reason == "" {
				reason = "it configures a simulator-only feature"
			}
			parts = append(parts, fmt.Sprintf("%s (%s)", optNames[id], reason))
		}
		return fmt.Errorf("plurality: job %s: the node runtime does not support %s",
			j.spec, strings.Join(parts, "; "))
	}
	if j.o.set&maskOf(idModel) != 0 && j.o.model != Poisson {
		return fmt.Errorf("plurality: job %s: the node runtime's clocks are per-node Poisson processes; WithModel selects a simulator schedule — use WithModel(Poisson) or omit the option", j.spec)
	}
	return nil
}

// validateAdversary checks an applied WithAdversary spec against the job's
// runner family and engine, beyond the optID mask (which already rejects it
// wholesale on the leap engine and OneExtraBit). The checks mirror the
// engines' own run-time rejections so a bad combination fails at NewJob.
func (j *Job) validateAdversary() error {
	if j.o.set&maskOf(idAdversary) == 0 {
		return nil
	}
	spec := j.o.adversary
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("plurality: job %s: %w", j.spec, err)
	}
	if !spec.Active() {
		return nil
	}
	d, _ := spec.Descriptor()
	switch j.kind {
	case KindCore:
		if d.Family == adversary.FamilyByzantine {
			return fmt.Errorf("plurality: job %s: the %s adversary has no lying channel in the core protocol (samples carry bits and real times alongside colors); use a registry sampling dynamic", j.spec, d.Name)
		}
	case KindSyncDynamic:
		if d.Family == adversary.FamilyScheduling {
			return fmt.Errorf("plurality: job %s: scheduling adversary %s needs asynchronous activations; synchronous rounds have no activation order to bias", j.spec, d.Name)
		}
	case KindDynamic:
		if d.PerNode && (j.o.engine == EngineOccupancy || j.o.engine == EngineLeap) {
			return fmt.Errorf("plurality: job %s: adversary %s targets individual nodes, which the count-collapsed engine does not track; use EnginePerNode or EngineAuto", j.spec, d.Name)
		}
	}
	return nil
}

// Run executes one run of the job from its initial counts, honoring ctx:
// cancellation or deadline expiry is polled inside every engine loop (the
// core schedule, the per-node dynamics, the count-collapsed leap/tick
// modes, the synchronous round loop, OneExtraBit's phases) and surfaces as
// a context error wrapping the progress made so far. Convergence failures
// keep the legacy sentinels: errors.Is(err, ErrNoConsensus | ErrTimeLimit |
// ErrPhaseLimit). The returned Report is meaningful in every error case.
//
// Run never mutates the job; concurrent Runs are safe and, for a fixed
// seed, bit-identical to the legacy RunX entry points with the same
// options.
func (j *Job) Run(ctx context.Context) (Report, error) {
	return j.run(ctx, j.o, nil)
}

// RunOn executes the job's protocol and options on a caller-supplied
// population, mutating it in place — the bridge for callers that prepare
// populations themselves (shuffled placements on spatial topologies, resumed
// states). The job's bound counts are ignored; the population defines the
// initial configuration. Jobs compiled with WithEngine(EngineOccupancy)
// still honor it: the run collapses the population's histogram and writes
// the final histogram back.
func (j *Job) RunOn(ctx context.Context, pop *Population) (Report, error) {
	if pop == nil {
		return Report{}, fmt.Errorf("plurality: job %s: nil population", j.spec)
	}
	if j.o.transport != nil {
		return Report{}, fmt.Errorf("plurality: job %s: the node runtime builds its cluster from the job's counts; RunOn's caller-supplied population is a simulator entry point", j.spec)
	}
	return j.runOn(ctx, j.o, nil, pop)
}

// run executes one run from the job's counts under o (a possibly reseeded
// copy of the job's options), reusing pooled trial state when st is
// non-nil.
func (j *Job) run(ctx context.Context, o *options, st *trialState) (Report, error) {
	if o.transport != nil {
		// Node-runtime path: live goroutine-backed nodes over the
		// configured transport. No pooled state applies — each run builds
		// a fresh transport instance and fresh nodes.
		return execCluster(ctx, j, o, 0)
	}
	if j.countsPath() {
		var counts []int64
		var rn *dynamics.Runner
		if st != nil {
			copy(st.counts, j.counts)
			counts, rn = st.counts, st.dyn
		} else {
			counts, rn = slices.Clone(j.counts), new(dynamics.Runner)
		}
		res, err := execCounts(ctx, rn, counts, j.desc, j.rule, o)
		return j.report(ReportFromAsync(res)), err
	}
	var pop *Population
	if st != nil {
		if err := st.pop.Reset(st.base); err != nil {
			return Report{}, err
		}
		pop = st.pop
	} else {
		var err error
		if pop, err = NewPopulation(j.counts); err != nil {
			return Report{}, err
		}
	}
	return j.runOn(ctx, o, st, pop)
}

// runOn dispatches one run on pop to the kind's engine.
func (j *Job) runOn(ctx context.Context, o *options, st *trialState, pop *Population) (Report, error) {
	switch j.kind {
	case KindCore:
		rn := core.NewRunner()
		if st != nil {
			rn = st.core
		}
		res, err := execCore(ctx, rn, pop, o)
		return j.report(ReportFromCore(res)), err
	case KindDynamic:
		rn := new(dynamics.Runner)
		if st != nil {
			rn = st.dyn
		}
		res, err := execAsync(ctx, rn, pop, j.rule, o)
		return j.report(ReportFromAsync(res)), err
	case KindSyncDynamic:
		rn := new(dynamics.Runner)
		if st != nil {
			rn = st.dyn
		}
		res, err := execSync(ctx, rn, pop, j.rule, o)
		return j.report(ReportFromSync(res)), err
	case KindOneExtraBit:
		rn := new(onebit.Runner)
		if st != nil {
			rn = st.ob
		}
		res, err := execOneBit(ctx, rn, pop, o)
		return j.report(ReportFromOneExtraBit(res)), err
	default:
		return Report{}, fmt.Errorf("plurality: job %q has unknown kind %d", j.spec, j.kind)
	}
}

// report stamps the job's identity onto a converted report.
func (j *Job) report(rep Report) Report {
	rep.Protocol = j.spec
	return rep
}

// trialState is the pooled per-worker state of Job.Trials: the cloned
// population (or histogram scratch on the counts path) plus the engine
// runner owning the reusable O(n) buffers.
type trialState struct {
	base   *Population
	pop    *Population
	counts []int64
	core   *core.Runner
	dyn    *dynamics.Runner
	ob     *onebit.Runner
}

// newTrialState builds one worker's pooled state; base is nil exactly on
// the counts path.
func (j *Job) newTrialState(base *Population) *trialState {
	st := &trialState{base: base}
	if base != nil {
		st.pop = base.Clone()
	} else {
		st.counts = make([]int64, len(j.counts))
	}
	switch j.kind {
	case KindCore:
		st.core = core.NewRunner()
	case KindOneExtraBit:
		st.ob = new(onebit.Runner)
	default:
		st.dyn = new(dynamics.Runner)
	}
	return st
}

// Trials executes trials independent runs of the job, sharded across
// WithTrialWorkers goroutines (default GOMAXPROCS). Trial t runs with a
// seed derived deterministically from the base WithSeed and t (see
// TrialSeed), so the result slice is a pure function of (job, trials) —
// independent of the worker count and of scheduling — and trial 0 is
// bit-identical to Run. Results are returned in trial order; the first
// failing trial's error (lowest index) is returned alongside the full
// slice, with later trials still run, so convergence failures leave every
// report usable.
//
// Per-worker state is pooled across trials via sync.Pool: populations and
// engine buffers — roughly seven O(n) slices for the core protocol, the
// staging/pending buffers of the dynamics engines, the O(k) histogram of
// counts jobs — are reused instead of reallocated and rezeroed, for every
// registered protocol and engine. Pooling cannot change results: a trial's
// outcome is a pure function of its seed.
//
// ctx cancels the whole fan-out: trials that already ran keep their
// reports, and the first canceled trial's context error is returned.
// Observer callbacks (WithObserver, WithProbe) are invoked concurrently
// from trial workers.
func (j *Job) Trials(ctx context.Context, trials int) ([]Report, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("plurality: trials = %d, want > 0", trials)
	}
	var base *Population
	if !j.countsPath() && j.o.transport == nil {
		var err error
		if base, err = NewPopulation(j.counts); err != nil {
			return nil, err
		}
	}

	// One pooled state per concurrently active worker; sync.Pool keeps the
	// states alive exactly as long as the trial loop needs them.
	pool := sync.Pool{New: func() any { return j.newTrialState(base) }}
	results := make([]Report, trials)
	err := par.ForEach(j.o.trialWorkers, trials, func(trial int) error {
		st := pool.Get().(*trialState)
		defer pool.Put(st)
		to := *j.o
		to.seed = TrialSeed(j.o.seed, trial)
		rep, err := j.run(ctx, &to, st)
		results[trial] = rep
		return err
	})
	return results, err
}

// --- execution layer ------------------------------------------------------
//
// The exec helpers below are the single execution path of the library: the
// Job methods and every legacy RunX shim call them with identical option
// structs, which is what keeps fixed-seed results bit-identical across the
// two API generations. ctx is honored through each engine's Stop hook; a
// Background (or otherwise never-canceled) context compiles to a nil hook
// and costs nothing on the hot path.

// stopFunc derives an engine Stop hook from ctx; nil when ctx can never be
// canceled.
func stopFunc(ctx context.Context) func() bool {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// ctxErr rewraps an engine's stop sentinel as the context's own error so
// callers can match errors.Is(err, context.Canceled) and friends; other
// errors pass through.
func ctxErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, core.ErrStopped) || errors.Is(err, dynamics.ErrStopped) || errors.Is(err, onebit.ErrStopped) {
		if cause := context.Cause(ctx); cause != nil {
			return fmt.Errorf("plurality: %w (%v)", cause, err)
		}
	}
	return err
}

// execCore executes one core-protocol run on the given (possibly reused)
// runner.
func execCore(ctx context.Context, rn *core.Runner, pop *Population, o *options) (CoreResult, error) {
	g, err := o.topology(pop)
	if err != nil {
		return CoreResult{}, err
	}
	s, err := o.scheduler(pop.N())
	if err != nil {
		return CoreResult{}, err
	}
	adv, err := o.newAdversary()
	if err != nil {
		return CoreResult{}, err
	}
	cfg := o.coreConfig(g)
	cfg.Scheduler = s
	cfg.Rand = rng.At(o.seed, 1)
	cfg.Stop = stopFunc(ctx)
	cfg.Adversary = adv
	o.coreObserver(&cfg, pop)
	res, err := rn.Run(pop, cfg)
	return res, ctxErr(ctx, err)
}

// execAsync executes one asynchronous sampling-dynamics run on pop.
func execAsync(ctx context.Context, rn *dynamics.Runner, pop *Population, rule dynamics.Rule, o *options) (AsyncResult, error) {
	g, err := o.topology(pop)
	if err != nil {
		return AsyncResult{}, err
	}
	s, err := o.scheduler(pop.N())
	if err != nil {
		return AsyncResult{}, err
	}
	cfg := dynamics.AsyncConfig{
		Graph:     g,
		Scheduler: s,
		Rand:      rng.At(o.seed, 1),
		MaxTime:   o.maxTime,
	}
	if o.delayRate > 0 {
		cfg.Delay = sched.ExpDelay{Rate: o.delayRate}
	}
	adv, err := o.newAdversary()
	if err != nil {
		return AsyncResult{}, err
	}
	cfg.Latency = o.latency
	cfg.Churn = o.churnRate
	cfg.Engine = o.dynamicsEngine()
	cfg.Leap = o.leapConfig()
	cfg.Stop = stopFunc(ctx)
	cfg.Adversary = adv
	cfg.ObserveInterval, cfg.OnSnapshot = o.asyncObserver()
	res, err := rn.RunAsync(pop, rule, cfg)
	return res, ctxErr(ctx, err)
}

// execSync executes one synchronous sampling-dynamics run on pop.
func execSync(ctx context.Context, rn *dynamics.Runner, pop *Population, rule dynamics.Rule, o *options) (SyncResult, error) {
	g, err := o.topology(pop)
	if err != nil {
		return SyncResult{}, err
	}
	adv, err := o.newAdversary()
	if err != nil {
		return SyncResult{}, err
	}
	obs := o.newSyncObserver()
	res, err := rn.RunSync(pop, rule, dynamics.SyncConfig{
		Graph:     g,
		Rand:      rng.At(o.seed, 0),
		MaxRounds: o.maxRounds,
		Stop:      stopFunc(ctx),
		OnRound:   obs.onRound(),
		Adversary: adv,
	})
	if errors.Is(err, dynamics.ErrStopped) {
		// The engine stops between rounds, where no per-round hook fires;
		// close the observation stream with the interrupted state.
		obs.final(res.Rounds, pop)
	}
	return res, ctxErr(ctx, err)
}

// execCounts executes one count-collapsed run directly on the histogram
// (mutated in place to the final histogram).
func execCounts(ctx context.Context, rn *dynamics.Runner, counts []int64, d protocols.Descriptor, rule dynamics.Rule, o *options) (AsyncResult, error) {
	// The O(k)-memory guards live on the registry descriptor so every
	// protocol — including newly registered ones — shares them.
	n, err := d.ValidateCounts(counts, o.model == HeapPoisson)
	if err != nil {
		return AsyncResult{}, err
	}
	s, err := o.scheduler(int(n))
	if err != nil {
		return AsyncResult{}, err
	}
	cfg := dynamics.AsyncConfig{
		Graph:     o.graph,
		Scheduler: s,
		Rand:      rng.At(o.seed, 1),
		MaxTime:   o.maxTime,
		Churn:     o.churnRate,
		Engine:    o.dynamicsEngine(),
		Leap:      o.leapConfig(),
	}
	if o.delayRate > 0 {
		cfg.Delay = sched.ExpDelay{Rate: o.delayRate}
	}
	adv, err := o.newAdversary()
	if err != nil {
		return AsyncResult{}, err
	}
	cfg.Latency = o.latency
	cfg.Stop = stopFunc(ctx)
	cfg.Adversary = adv
	cfg.ObserveInterval, cfg.OnSnapshot = o.asyncObserver()
	res, err := rn.RunAsyncCounts(counts, rule, cfg)
	return res, ctxErr(ctx, err)
}

// execOneBit executes one OneExtraBit run on pop. The phase budget is
// WithMaxPhases when set; otherwise the deprecated legacy derivation
// max(1, MaxRounds/10) applies, preserving the historical default.
func execOneBit(ctx context.Context, rn *onebit.Runner, pop *Population, o *options) (OneExtraBitResult, error) {
	g, err := o.topology(pop)
	if err != nil {
		return OneExtraBitResult{}, err
	}
	maxPhases := o.maxPhases
	if maxPhases <= 0 {
		maxPhases = o.maxRounds / 10
		if maxPhases < 1 {
			maxPhases = 1
		}
	}
	obs := o.newOneBitObserver()
	res, err := rn.Run(pop, onebit.Config{
		Graph:             g,
		Rand:              rng.At(o.seed, 0),
		MaxPhases:         maxPhases,
		PropagationRounds: o.propagationRounds,
		OnPhase:           obs.hook(o.onPhase),
		Stop:              stopFunc(ctx),
	})
	if errors.Is(err, onebit.ErrStopped) {
		// Interrupted runs end between rounds, where no phase hook fires;
		// close the observation stream with the interrupted state.
		obs.final(res.Phases, pop)
	}
	return res, ctxErr(ctx, err)
}

// dynamicsEngine maps the public engine option onto the internal one.
func (o *options) dynamicsEngine() dynamics.Engine {
	switch o.engine {
	case EnginePerNode:
		return dynamics.EnginePerNode
	case EngineOccupancy:
		return dynamics.EngineOccupancy
	case EngineLeap:
		return dynamics.EngineLeap
	default:
		return dynamics.EngineAuto
	}
}

// leapConfig maps the public leap error-budget options onto the engine's
// knobs (zero values select the engine defaults).
func (o *options) leapConfig() occupancy.LeapConfig {
	return occupancy.LeapConfig{Eps: o.leapEps, ODETheta: o.odeTheta}
}

// topology returns the configured graph or the default complete graph
// sized to the population.
func (o *options) topology(pop *Population) (Graph, error) {
	if pop == nil {
		return nil, fmt.Errorf("plurality: nil population")
	}
	if o.graph != nil {
		return o.graph, nil
	}
	return CompleteGraph(pop.N())
}

// scheduler builds the configured asynchronous engine.
func (o *options) scheduler(n int) (sched.Scheduler, error) {
	switch o.model {
	case Sequential:
		return sched.NewSequential(n, rng.At(o.seed, 0))
	case Poisson:
		return sched.NewPoisson(n, 1, rng.At(o.seed, 0))
	case HeapPoisson:
		return sched.NewHeapPoisson(n, 1, rng.At(o.seed, 0))
	case Synchronous:
		return nil, fmt.Errorf("plurality: the Synchronous model has no asynchronous scheduler; it selects the round-based dynamics engine (Job API or RunDynamicSync)")
	default:
		return nil, fmt.Errorf("plurality: unknown model %d", o.model)
	}
}
