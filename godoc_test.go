package plurality_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestPublicSurfaceIsDocumented walks the root package's AST and fails on
// any exported identifier — function, type, method, const/var, or struct
// field of an exported struct — that has no doc comment. staticcheck's
// ST10xx checks (enforced in CI via staticcheck.conf) catch malformed doc
// comments but not missing ones; this test closes that gap locally, so a
// new exported symbol cannot land undocumented even on machines without
// staticcheck installed. The documented surface itself is pinned by
// api.txt (`make api-check`).
func TestPublicSurfaceIsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["plurality"]
	if !ok {
		t.Fatalf("package plurality not found in .; got %v", pkgs)
	}

	var missing []string
	report := func(pos token.Pos, what string) {
		missing = append(missing, fset.Position(pos).String()+": "+what)
	}

	packageDocumented := false
	for _, f := range pkg.Files {
		if f.Doc != nil {
			packageDocumented = true
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue // method on an unexported type: not public surface
				}
				if d.Doc == nil {
					report(d.Pos(), "exported func/method "+d.Name.Name+" has no doc comment")
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						// A doc comment on the grouped decl covers a sole spec.
						if d.Doc == nil && s.Doc == nil {
							report(s.Pos(), "exported type "+s.Name.Name+" has no doc comment")
						}
						st, isStruct := s.Type.(*ast.StructType)
						if !isStruct {
							continue
						}
						for _, field := range st.Fields.List {
							for _, name := range field.Names {
								if name.IsExported() && field.Doc == nil && field.Comment == nil {
									report(name.Pos(), "exported field "+s.Name.Name+"."+name.Name+" has no doc or line comment")
								}
							}
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(name.Pos(), "exported const/var "+name.Name+" has no doc or line comment")
							}
						}
					}
				}
			}
		}
	}
	if !packageDocumented {
		missing = append(missing, "package plurality has no package doc comment (ST1000)")
	}
	for _, m := range missing {
		t.Error(m)
	}
}

// exportedReceiver reports whether a method receiver names an exported
// type, unwrapping pointer and generic-instantiation receivers.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.IndexListExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
