package plurality

import (
	"errors"
	"testing"
)

func mustPop(t *testing.T, counts []int64) *Population {
	t.Helper()
	pop, err := NewPopulation(counts)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func biasedCounts(t *testing.T, n, k int, eps float64) []int64 {
	t.Helper()
	counts, err := Biased(n, k, eps)
	if err != nil {
		t.Fatal(err)
	}
	return counts
}

func gapSqrtCounts(t *testing.T, n, k int, z float64) []int64 {
	t.Helper()
	counts, err := GapSqrt(n, k, z)
	if err != nil {
		t.Fatal(err)
	}
	return counts
}

func gapPolylogCounts(t *testing.T, n, k int, z float64) []int64 {
	t.Helper()
	counts, err := GapSqrtPolylog(n, k, z)
	if err != nil {
		t.Fatal(err)
	}
	return counts
}

func TestWorkloadConstructors(t *testing.T) {
	tests := []struct {
		name string
		make func() ([]int64, error)
	}{
		{name: "Biased", make: func() ([]int64, error) { return Biased(10000, 8, 0.5) }},
		{name: "GapSqrt", make: func() ([]int64, error) { return GapSqrt(10000, 8, 1) }},
		{name: "GapSqrtPolylog", make: func() ([]int64, error) { return GapSqrtPolylog(10000, 8, 0.5) }},
		{name: "TinyGap", make: func() ([]int64, error) { return TinyGap(10000, 8, 1) }},
		{name: "Uniform", make: func() ([]int64, error) { return Uniform(10000, 8) }},
		{name: "Zipf", make: func() ([]int64, error) { return Zipf(10000, 8, 1.1) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			counts, err := tt.make()
			if err != nil {
				t.Fatal(err)
			}
			var total int64
			for _, c := range counts {
				total += c
			}
			if total != 10000 || len(counts) != 8 {
				t.Fatalf("counts = %v", counts)
			}
		})
	}
}

func TestRunCoreEndToEnd(t *testing.T) {
	pop := mustPop(t, biasedCounts(t, 5000, 4, 1))
	res, err := RunCore(pop, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("res = %+v", res)
	}
	if !pop.ConsensusOn(0) {
		t.Fatalf("population not unanimous: %v", pop.Counts())
	}
}

func TestRunCorePoissonModel(t *testing.T) {
	pop := mustPop(t, biasedCounts(t, 3000, 4, 1))
	res, err := RunCore(pop, WithSeed(8), WithModel(Poisson))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunCoreDeterministicAcrossCalls(t *testing.T) {
	run := func() CoreResult {
		pop := mustPop(t, biasedCounts(t, 2000, 4, 1))
		res, err := RunCore(pop, WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs with equal seed differ: %+v vs %+v", a, b)
	}
}

func TestRunCoreUnknownModel(t *testing.T) {
	pop := mustPop(t, biasedCounts(t, 100, 2, 1))
	if _, err := RunCore(pop, WithModel(Model(99))); err == nil {
		t.Fatal("unknown model should fail")
	}
}

func TestRunCoreNilPopulation(t *testing.T) {
	if _, err := RunCore(nil); err == nil {
		t.Fatal("nil population should fail")
	}
}

func TestRunCoreBudgetError(t *testing.T) {
	pop := mustPop(t, biasedCounts(t, 2000, 4, 0.5))
	_, err := RunCore(pop, WithMaxTime(1))
	if !errors.Is(err, ErrNoConsensus) {
		t.Fatalf("err = %v, want ErrNoConsensus", err)
	}
}

func TestRunTwoChoicesSync(t *testing.T) {
	pop := mustPop(t, gapSqrtCounts(t, 4000, 4, 1.5))
	res, err := RunTwoChoicesSync(pop, WithSeed(10))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunTwoChoicesAsync(t *testing.T) {
	pop := mustPop(t, biasedCounts(t, 2000, 3, 1))
	res, err := RunTwoChoicesAsync(pop, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunVoterBothModels(t *testing.T) {
	syncPop := mustPop(t, []int64{200, 200})
	if _, err := RunVoterSync(syncPop, WithSeed(12)); err != nil {
		t.Fatal(err)
	}
	asyncPop := mustPop(t, []int64{200, 200})
	res, err := RunVoterAsync(asyncPop, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("voter async did not converge: %+v", res)
	}
}

func TestRunThreeMajority(t *testing.T) {
	pop := mustPop(t, biasedCounts(t, 3000, 4, 1))
	res, err := RunThreeMajoritySync(pop, WithSeed(14))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("res = %+v", res)
	}
	pop2 := mustPop(t, biasedCounts(t, 3000, 4, 1))
	res2, err := RunThreeMajorityAsync(pop2, WithSeed(15))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Done || res2.Winner != 0 {
		t.Fatalf("res2 = %+v", res2)
	}
}

func TestRunOneExtraBit(t *testing.T) {
	pop := mustPop(t, gapPolylogCounts(t, 10000, 8, 0.5))
	var phases int
	res, err := RunOneExtraBit(pop, WithSeed(16), WithPhaseObserver(func(PhaseInfo) { phases++ }))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("res = %+v", res)
	}
	if phases == 0 {
		t.Fatal("phase observer never fired")
	}
}

func TestRunCoreWithProbeAndTuning(t *testing.T) {
	pop := mustPop(t, biasedCounts(t, 2000, 4, 1))
	var probes int
	res, err := RunCore(pop,
		WithSeed(17),
		WithDelta(40),
		WithPhases(8),
		WithGadgetSamples(20),
		WithEndgameTicks(60),
		WithProbe(10, func(CoreProbe) { probes++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("res = %+v", res)
	}
	if probes == 0 {
		t.Fatal("probe observer never fired")
	}
}

func TestRunCoreEndgameOnly(t *testing.T) {
	pop := mustPop(t, []int64{4500, 500})
	res, err := RunCore(pop, WithSeed(18), WithEndgameOnly(), WithRunToHalt())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || !res.EndgameSafe || res.FirstHaltTime == 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunCoreWithResponseDelay(t *testing.T) {
	pop := mustPop(t, biasedCounts(t, 2000, 3, 1))
	res, err := RunCore(pop, WithSeed(19), WithResponseDelay(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunCoreFailureInjection(t *testing.T) {
	spec, err := PlanCore(4000)
	if err != nil {
		t.Fatal(err)
	}
	pop := mustPop(t, biasedCounts(t, 4000, 4, 1))
	res, err := RunCore(pop,
		WithSeed(20),
		WithCrashes(0.01),
		WithDesync(0.02, spec.PhaseTicks),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestPlanCore(t *testing.T) {
	spec, err := PlanCore(100000)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Delta <= 0 || spec.Part1Ticks != spec.Phases*spec.PhaseTicks {
		t.Fatalf("spec = %+v", spec)
	}
	custom, err := PlanCore(100000, WithDelta(99))
	if err != nil {
		t.Fatal(err)
	}
	if custom.Delta != 99 {
		t.Fatalf("override ignored: %+v", custom)
	}
}

func TestWithGraphTopology(t *testing.T) {
	// Voter on a small cycle still reaches consensus (slowly).
	g, err := CycleGraph(30)
	if err != nil {
		t.Fatal(err)
	}
	pop := mustPop(t, []int64{15, 15})
	res, err := RunVoterAsync(pop, WithSeed(21), WithGraph(g), WithMaxTime(1e6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("res = %+v", res)
	}
}

func TestTopologyConstructors(t *testing.T) {
	if _, err := CompleteGraph(10); err != nil {
		t.Error(err)
	}
	if _, err := TorusGraph(4, 4); err != nil {
		t.Error(err)
	}
	g, err := RandomGraph(100, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("N = %d", g.N())
	}
}

func TestSyncRunnersRespectMaxRounds(t *testing.T) {
	pop := mustPop(t, []int64{500, 500})
	// keep-own is impossible here, but a tiny round budget with real
	// dynamics still has to error out on a large balanced instance.
	_, err := RunVoterSync(pop, WithSeed(22), WithMaxRounds(1))
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
}
