package plurality

import (
	"context"
	"testing"
)

// checkSnapshots validates the invariants every snapshot stream must obey:
// non-empty, histogram totals matching n, fractions in (0, 1], and a final
// fully-converged snapshot when the run converged and the interval divides
// finely enough to observe the last step.
func checkSnapshots(t *testing.T, snaps []Snapshot, n int64) {
	t.Helper()
	if len(snaps) == 0 {
		t.Fatal("observer delivered no snapshots")
	}
	for i, s := range snaps {
		var total int64
		for _, v := range s.Counts {
			total += v
		}
		total += s.Undecided
		if total != n {
			t.Fatalf("snapshot %d: histogram total %d != n %d (%+v)", i, total, n, s)
		}
		if s.ConvergedFraction <= 0 || s.ConvergedFraction > 1 {
			t.Fatalf("snapshot %d: converged fraction %v out of (0, 1]", i, s.ConvergedFraction)
		}
		if i > 0 && s.Time < snaps[i-1].Time {
			t.Fatalf("snapshot %d: time went backwards: %v after %v", i, s.Time, snaps[i-1].Time)
		}
	}
}

// TestWithObserverAllRunners: the uniform observation surface must stream
// snapshots from every runner family — core, per-node dynamics, the
// count-collapsed occupancy engine (dynamics trajectories on the counts
// path for the first time), the synchronous engine and OneExtraBit.
func TestWithObserverAllRunners(t *testing.T) {
	const n = 2000
	counts, err := Biased(n, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		spec     string
		interval float64
		opts     []Option
	}{
		{name: "core", spec: "core", interval: 50},
		{name: "per-node", spec: "two-choices", interval: 1,
			opts: []Option{WithEngine(EnginePerNode)}},
		{name: "auto-collapsed", spec: "two-choices", interval: 1},
		{name: "counts", spec: "usd", interval: 1,
			opts: []Option{WithEngine(EngineOccupancy)}},
		{name: "sync", spec: "3-majority", interval: 1,
			opts: []Option{WithModel(Synchronous)}},
		{name: "onebit", spec: "onebit", interval: 1,
			opts: []Option{WithMaxPhases(100)}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var snaps []Snapshot
			record := func(s Snapshot) {
				c := s
				c.Counts = append([]int64(nil), s.Counts...) // Counts is only valid in the callback
				snaps = append(snaps, c)
			}
			opts := append([]Option{WithSeed(7), WithObserver(tc.interval, record)}, tc.opts...)
			job, err := NewJob(tc.spec, counts, opts...)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := job.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Converged {
				t.Fatalf("run did not converge: %+v", rep)
			}
			checkSnapshots(t, snaps, n)
		})
	}
}

// TestObserverDoesNotPerturbUnobservedRuns: attaching an observer must not
// change what an unobserved run with the same seed produces on engines with
// materialized per-tick times (per-node, sync, onebit, core). The
// count-collapsed engine is exempt by contract: observation forces tick
// mode, which consumes the RNG differently from leap mode.
func TestObserverDoesNotPerturbUnobservedRuns(t *testing.T) {
	counts, err := Biased(1200, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		spec string
		opts []Option
	}{
		{name: "core", spec: "core"},
		{name: "per-node", spec: "two-choices", opts: []Option{WithEngine(EnginePerNode)}},
		{name: "sync", spec: "voter", opts: []Option{WithModel(Synchronous)}},
		{name: "onebit", spec: "onebit", opts: []Option{WithMaxPhases(50)}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			base := append([]Option{WithSeed(13)}, tc.opts...)
			plain, err := NewJob(tc.spec, counts, base...)
			if err != nil {
				t.Fatal(err)
			}
			observed, err := NewJob(tc.spec, counts,
				append(base, WithObserver(10, func(Snapshot) {}))...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := plain.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			got, err := observed.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if flatten(got) != flatten(want) {
				t.Fatalf("observer changed the run: %+v != %+v", got, want)
			}
		})
	}
}

// TestTrajectoryRecordsRun: the Trajectory helper (the public face of
// internal/trace) collects the converged-fraction series and renders a
// sparkline.
func TestTrajectoryRecordsRun(t *testing.T) {
	counts, err := Biased(5000, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	traj := NewTrajectory()
	job, err := NewJob("two-choices", counts, WithSeed(2),
		WithEngine(EngineOccupancy), traj.Observer(0.5))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("run did not converge: %+v", rep)
	}
	if traj.Len() == 0 {
		t.Fatal("trajectory recorded nothing")
	}
	if last := traj.Last(); last != 1 {
		t.Fatalf("final converged fraction = %v, want 1", last)
	}
	times, fracs := traj.Series(SeriesConverged)
	if len(times) != traj.Len() || len(fracs) != traj.Len() {
		t.Fatalf("series lengths %d/%d != %d", len(times), len(fracs), traj.Len())
	}
	if spark := traj.Sparkline(30); len([]rune(spark)) != 30 {
		t.Fatalf("sparkline %q, want width 30", spark)
	}
}

// TestOneExtraBitWithMaxPhases: the new option bounds the phase budget
// directly; when unset, the deprecated maxRounds/10 derivation still
// applies (regression guard for the legacy behavior).
func TestOneExtraBitWithMaxPhases(t *testing.T) {
	// A hard workload that cannot converge in one short phase.
	counts, err := Uniform(2000, 16)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts ...Option) OneExtraBitResult {
		pop, err := NewPopulation(counts)
		if err != nil {
			t.Fatal(err)
		}
		res, _ := RunOneExtraBit(pop, append([]Option{WithSeed(4), WithPropagationRounds(1)}, opts...)...)
		return res
	}

	// Explicit budget: the run must stop at exactly the requested phase
	// count when it cannot converge.
	if res := run(WithMaxPhases(2)); res.Done || res.Phases != 2 {
		t.Fatalf("WithMaxPhases(2): %+v, want 2 exhausted phases", res)
	}

	// Legacy derivation: WithMaxRounds(40) means a budget of 40/10 = 4
	// phases — bit-identical to spelling the same budget explicitly.
	legacy := run(WithMaxRounds(40))
	explicit := run(WithMaxPhases(4))
	if legacy != explicit {
		t.Fatalf("maxRounds/10 derivation diverged from WithMaxPhases: %+v != %+v", legacy, explicit)
	}
	if legacy.Done || legacy.Phases != 4 {
		t.Fatalf("legacy derivation: %+v, want 4 exhausted phases", legacy)
	}

	// The explicit option wins over the derivation when both are given.
	if res := run(WithMaxRounds(40), WithMaxPhases(1)); res.Phases != 1 {
		t.Fatalf("WithMaxPhases should override the derivation: %+v", res)
	}

	// And the tiny-budget floor: maxRounds < 10 still grants one phase.
	if res := run(WithMaxRounds(5)); res.Phases != 1 {
		t.Fatalf("floor: %+v, want 1 phase", res)
	}
}

// TestObserverFinalSnapshotOnCancellation: the WithObserver contract — the
// stream always closes with the state the run ended in — must hold for
// canceled runs on every engine family, including the synchronous round
// loop (which stops between rounds) and runs canceled before their first
// activation.
func TestObserverFinalSnapshotOnCancellation(t *testing.T) {
	counts, err := Uniform(50_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name string
		spec string
		opts []Option
	}{
		{name: "occupancy", spec: "voter", opts: []Option{WithEngine(EngineOccupancy)}},
		{name: "per-node", spec: "voter", opts: []Option{WithEngine(EnginePerNode)}},
		{name: "sync", spec: "voter", opts: []Option{WithModel(Synchronous)}},
		{name: "core", spec: "core"},
		{name: "onebit", spec: "onebit", opts: []Option{WithMaxPhases(100)}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var snaps []Snapshot
			job, err := NewJob(tc.spec, counts, append(tc.opts,
				WithSeed(3), WithObserver(1e9, func(s Snapshot) { snaps = append(snaps, s) }))...)
			if err != nil {
				t.Fatal(err)
			}
			rep, runErr := job.Run(ctx)
			if runErr == nil {
				t.Fatalf("canceled run returned nil error (rep %+v)", rep)
			}
			if len(snaps) == 0 {
				t.Fatal("canceled run closed the observation stream without a final snapshot")
			}
			last := snaps[len(snaps)-1]
			var total int64
			for _, v := range last.Counts {
				total += v
			}
			if total+last.Undecided != 50_000 {
				t.Fatalf("final snapshot histogram total %d, want n", total+last.Undecided)
			}
		})
	}
}

// TestStopBeforeFirstTickReportsZeroTicks: a cancellation that lands before
// any activation was delivered must not invent a tick from the zero-value
// scheduler state.
func TestStopBeforeFirstTickReportsZeroTicks(t *testing.T) {
	counts, err := Biased(10_000, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name string
		spec string
		opts []Option
	}{
		{name: "core", spec: "core"},
		{name: "core-observed", spec: "core",
			opts: []Option{WithObserver(10, func(Snapshot) {})}},
		{name: "core-probed", spec: "core",
			opts: []Option{WithProbe(10, func(CoreProbe) {})}},
		{name: "per-node", spec: "voter", opts: []Option{WithEngine(EnginePerNode)}},
		{name: "per-node-observed", spec: "voter",
			opts: []Option{WithEngine(EnginePerNode), WithObserver(10, func(Snapshot) {})}},
		{name: "occupancy", spec: "voter", opts: []Option{WithEngine(EngineOccupancy)}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			job, err := NewJob(tc.spec, counts, append(tc.opts, WithSeed(3))...)
			if err != nil {
				t.Fatal(err)
			}
			rep, _ := job.Run(ctx)
			if rep.Ticks != 0 {
				t.Fatalf("Ticks = %d before any delivered activation, want 0", rep.Ticks)
			}
		})
	}
}
