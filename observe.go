package plurality

import (
	"plurality/internal/core"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/trace"
)

// Snapshot is one streamed observation of a running protocol, delivered to
// the WithObserver callback. Every runner family produces the same shape:
// asynchronous runs (core, the sampling dynamics on either engine) snapshot
// by parallel time, synchronous runs by round, and OneExtraBit by phase.
//
// Counts aliases runner-owned scratch memory and is valid only for the
// duration of the callback — copy it to retain it.
type Snapshot struct {
	// Time locates the snapshot: parallel time for asynchronous runs, the
	// completed round count for synchronous dynamics, and the completed
	// phase count for OneExtraBit.
	Time float64
	// Ticks is the number of asynchronous activations delivered so far (0
	// for synchronous runners).
	Ticks int64
	// Rounds is the number of synchronous rounds completed so far (0 for
	// asynchronous runners).
	Rounds int
	// Counts is the current color histogram.
	Counts []int64
	// Undecided is the current number of undecided (USD) nodes; 0 for
	// protocols without an undecided state.
	Undecided int64
	// ConvergedFraction is the support fraction of the current leading
	// color over all nodes (undecided included), reaching 1 exactly at
	// consensus.
	ConvergedFraction float64
}

// WithObserver streams periodic Snapshots from any runner: every interval
// units of parallel time on the asynchronous engines (the count-collapsed
// occupancy engine included), every max(1, ⌊interval⌋) rounds on the
// synchronous dynamics engine, and every phase on OneExtraBit. The stream
// always ends with a snapshot of the state the run ended in (consensus,
// budget exhaustion or cancellation). It is the uniform observation surface
// the legacy per-runner hooks (WithProbe, WithPhaseObserver) predate;
// unlike the dynamics OnTick hook it does not force the per-node engine.
//
// Observation changes no protocol decision, but it can change which
// *trajectory* a fixed seed produces on the count-collapsed engine: leap
// mode's lazily materialized tick times cannot be queried per transition,
// so an observed counts run executes tick by tick instead (identical
// distribution, different RNG stream). Unobserved runs are bit-identical
// with or without this option available.
//
// The callback runs synchronously on the simulation goroutine; Job.Trials
// may invoke it concurrently from different trial workers.
func WithObserver(interval float64, fn func(Snapshot)) Option {
	return optionFunc(func(o *options) {
		o.mark(idObserver)
		o.observeInterval = interval
		o.onSnapshot = fn
	})
}

// convergedFraction returns the leading-color support fraction over all
// nodes, undecided included.
func convergedFraction(counts []int64, undecided int64) float64 {
	var max, total int64
	for _, v := range counts {
		total += v
		if v > max {
			max = v
		}
	}
	total += undecided
	if total == 0 {
		return 0
	}
	return float64(max) / float64(total)
}

// fillCounts copies pop's histogram into buf, growing it as needed — the
// allocation-free equivalent of pop.Counts() for observer callbacks.
func fillCounts(buf []int64, pop *Population) []int64 {
	k := pop.K()
	if cap(buf) < k {
		buf = make([]int64, k)
	}
	buf = buf[:k]
	for c := 0; c < k; c++ {
		buf[c] = pop.Count(Color(c))
	}
	return buf
}

// asyncObserver adapts the public observer onto the dynamics engines'
// snapshot hook (shared by the per-node and count-collapsed paths).
func (o *options) asyncObserver() (interval float64, fn func(dynamics.Snapshot)) {
	if o.onSnapshot == nil {
		return 0, nil
	}
	return o.observeInterval, func(s dynamics.Snapshot) {
		o.onSnapshot(Snapshot{
			Time:              s.Time,
			Ticks:             s.Ticks,
			Counts:            s.Counts,
			Undecided:         s.Undecided,
			ConvergedFraction: convergedFraction(s.Counts, s.Undecided),
		})
	}
}

// coreObserver wires the public observer into a core config: the engine
// reports (time, ticks) instants and the adapter reads the histogram off
// the live population during the callback.
func (o *options) coreObserver(cfg *core.Config, pop *Population) {
	if o.onSnapshot == nil {
		return
	}
	var buf []int64
	cfg.ObserveInterval = o.observeInterval
	cfg.OnObserve = func(now float64, ticks int64) {
		buf = fillCounts(buf, pop)
		o.onSnapshot(Snapshot{
			Time:              now,
			Ticks:             ticks,
			Counts:            buf,
			Undecided:         pop.Undecided(),
			ConvergedFraction: convergedFraction(buf, pop.Undecided()),
		})
	}
}

// syncObserver adapts the public observer onto the synchronous dynamics
// engine's per-round hook, sampling every max(1, ⌊interval⌋) rounds plus
// the round the run ends on — consensus, budget exhaustion (onRound) or
// cancellation (final, invoked by execSync because the engine stops
// between rounds, where no hook fires).
type syncObserver struct {
	o         *options
	every     int
	buf       []int64
	lastRound int // rounds covered by the last emission; -1 = none
}

// newSyncObserver returns nil when no observer is registered; the nil
// receiver is valid for onRound and final.
func (o *options) newSyncObserver() *syncObserver {
	if o.onSnapshot == nil {
		return nil
	}
	every := int(o.observeInterval)
	if every < 1 {
		every = 1
	}
	return &syncObserver{o: o, every: every, lastRound: -1}
}

// onRound returns the engine hook (nil when unobserved).
func (s *syncObserver) onRound() func(round int, pop *Population) {
	if s == nil {
		return nil
	}
	return func(round int, pop *Population) {
		if (round+1)%s.every != 0 && round+1 != s.o.maxRounds && !pop.IsUnanimous() {
			return
		}
		s.emit(round+1, pop)
	}
}

func (s *syncObserver) emit(rounds int, pop *Population) {
	s.buf = fillCounts(s.buf, pop)
	s.lastRound = rounds
	s.o.onSnapshot(Snapshot{
		Time:              float64(rounds),
		Rounds:            rounds,
		Counts:            s.buf,
		Undecided:         pop.Undecided(),
		ConvergedFraction: convergedFraction(s.buf, pop.Undecided()),
	})
}

// final closes the stream with the state an interrupted run ended in,
// unless the closing round already emitted.
func (s *syncObserver) final(rounds int, pop *Population) {
	if s == nil || s.lastRound == rounds {
		return
	}
	s.emit(rounds, pop)
}

// oneBitObserver adapts the public observer onto OneExtraBit's per-phase
// hook, chaining the user's own WithPhaseObserver callback when both are
// set. Snapshot.Time is the completed phase count (PhaseInfo does not track
// cumulative rounds). final closes the stream for interrupted runs, which
// end without a phase boundary.
type oneBitObserver struct {
	o         *options
	buf       []int64
	lastPhase int // phases covered by the last emission; -1 = none
}

// newOneBitObserver returns nil when no observer is registered; the nil
// receiver is valid for hook and final.
func (o *options) newOneBitObserver() *oneBitObserver {
	if o.onSnapshot == nil {
		return nil
	}
	return &oneBitObserver{o: o, lastPhase: -1}
}

// hook returns the engine's per-phase callback: the user's own
// WithPhaseObserver (possibly nil) when unobserved, else the chained
// phase-and-snapshot emitter.
func (s *oneBitObserver) hook(user func(PhaseInfo)) func(PhaseInfo) {
	if s == nil {
		return user
	}
	return func(info PhaseInfo) {
		if user != nil {
			user(info)
		}
		s.lastPhase = info.Phase + 1
		s.o.onSnapshot(Snapshot{
			Time:              float64(info.Phase + 1),
			Counts:            info.Counts,
			ConvergedFraction: convergedFraction(info.Counts, 0),
		})
	}
}

// final closes the stream with the state an interrupted run ended in,
// unless the last completed phase already emitted it (runs stopped exactly
// at a phase boundary).
func (s *oneBitObserver) final(phases int, pop *Population) {
	if s == nil || s.lastPhase == phases {
		return
	}
	s.buf = fillCounts(s.buf, pop)
	s.o.onSnapshot(Snapshot{
		Time:              float64(phases),
		Counts:            s.buf,
		ConvergedFraction: convergedFraction(s.buf, 0),
	})
}

// Trajectory records observed runs as time series — the public face of the
// internal trace recorder. Attach it to any run via Observer and render the
// recorded support trajectory afterwards:
//
//	traj := plurality.NewTrajectory()
//	job, _ := plurality.NewJob("voter", counts, traj.Observer(10))
//	job.Run(ctx)
//	fmt.Println(traj.Sparkline(40))
//
// A Trajectory is not safe for concurrent use; give each trial its own
// (Job.Trials invokes observers from parallel workers).
type Trajectory struct {
	rec *trace.Recorder
}

// Trajectory series names.
const (
	// SeriesConverged is the leading-color support fraction over time.
	SeriesConverged = "converged"
	// SeriesUndecided is the undecided-node count over time.
	SeriesUndecided = "undecided"
)

// NewTrajectory returns an empty trajectory recorder.
func NewTrajectory() *Trajectory {
	return &Trajectory{rec: trace.NewRecorder()}
}

// Observer returns the option that streams the run into the trajectory,
// recording the converged fraction and the undecided count every interval
// (see WithObserver for interval semantics).
func (tr *Trajectory) Observer(interval float64) Option {
	return WithObserver(interval, tr.Record)
}

// Record appends one snapshot to the trajectory; it is the callback
// Observer registers and may be passed to WithObserver directly.
func (tr *Trajectory) Record(s Snapshot) {
	tr.rec.Record(SeriesConverged, s.Time, s.ConvergedFraction)
	tr.rec.Record(SeriesUndecided, s.Time, float64(s.Undecided))
}

// Len returns the number of recorded snapshots.
func (tr *Trajectory) Len() int {
	s := tr.rec.Series(SeriesConverged)
	if s == nil {
		return 0
	}
	return s.Len()
}

// Last returns the most recent converged fraction (0 when empty).
func (tr *Trajectory) Last() float64 {
	s := tr.rec.Series(SeriesConverged)
	if s == nil {
		return 0
	}
	return s.Last()
}

// Series returns the recorded (times, values) of the named series
// (SeriesConverged, SeriesUndecided); both slices are nil for an unrecorded
// name.
func (tr *Trajectory) Series(name string) (times, values []float64) {
	s := tr.rec.Series(name)
	if s == nil {
		return nil, nil
	}
	return s.X, s.Y
}

// Sparkline renders the converged-fraction trajectory as a fixed-width
// unicode sparkline ("" when nothing was recorded).
func (tr *Trajectory) Sparkline(width int) string {
	s := tr.rec.Series(SeriesConverged)
	if s == nil {
		return ""
	}
	return trace.Sparkline(s.Y, width)
}
