# Single source of truth for the commands CI runs; keep .github/workflows/ci.yml
# pointed at these targets so local dev and CI cannot drift.

GO ?= go

# Minimum statement coverage over the packages `make cover` measures
# (internal/exp and internal/sched, the sweep engine and its scheduler
# substrate). Currently ~92%; the floor leaves headroom for refactors while
# catching untested new code.
COVER_MIN ?= 85

.PHONY: build test test-short test-race cover bench bench-smoke schedbench \
	scalebench scale-smoke scale-baseline \
	leapbench leap-smoke leap-baseline \
	servebench serve-smoke serve-baseline \
	sweep-smoke sweep-baseline sweep-nightly \
	adv-smoke adv-baseline topo-smoke topo-baseline \
	net-smoke net-baseline lint fmt api api-check

build:
	$(GO) build ./...

# Regenerate the committed public-API surface record (run after an
# intentional API change; commit the result).
api:
	$(GO) doc -all . > api.txt

# CI gate: the public surface of the root package must match the committed
# api.txt, so accidental exports — or accidentally dropped deprecated shims
# — fail the build instead of shipping silently.
api-check:
	@$(GO) doc -all . | diff -u api.txt - \
		|| { echo "public API surface drifted: run 'make api' and commit api.txt"; exit 1; }

test:
	$(GO) test ./...

test-short:
	$(GO) test -shuffle=on -short ./...

test-race:
	$(GO) test -race -shuffle=on -short ./...

# Statement coverage of the experiment engine and the scheduler, with a
# minimum-coverage gate (override the floor with COVER_MIN=nn).
cover:
	$(GO) test -coverprofile=cover.out ./internal/exp ./internal/sched
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { exit (t + 0 < m + 0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the $(COVER_MIN)% floor"; exit 1; }

# Full benchmark pass (slow; regenerates local numbers, not committed).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# One iteration of every benchmark — catches benchmarks that no longer
# compile or crash, without paying measurement time.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Regenerate BENCH_sched.json (the scheduler-engine before/after record).
schedbench:
	$(GO) run ./cmd/experiments -schedbench -schedbench-out BENCH_sched.json

# Regenerate BENCH_scale.json (the engine scaling record: full Two-Choices
# consensus runs — per-node to n = 1e6 on the clique and on the quenched
# random-regular CSR path, occupancy to n = 1e9, the degree-class lumped
# engine to n = 1e9 on the annealed d=8 family, hybrid leap to n = 1e12;
# takes a couple of minutes).
scalebench:
	$(GO) run ./cmd/experiments -scalebench -scalebench-out BENCH_scale.json

# CI scale harness: the smoke grid (occupancy at n = 1e7 in seconds),
# diffed against the committed baseline on machine-portable quantities
# (convergence, deterministic tick counts, bytes/node, speedup ratio).
scale-smoke:
	$(GO) run ./cmd/experiments -scalebench -smoke \
		-scalebench-out BENCH_scale_smoke.json -scale-baseline BENCH_scale_baseline.json

# Regenerate the committed scale smoke baseline (run after an intentional
# engine change; commit the result).
scale-baseline:
	$(GO) run ./cmd/experiments -scalebench -smoke -scalebench-out BENCH_scale_baseline.json

# Regenerate BENCH_leap.json (the hybrid tau-leap/mean-field engine record:
# full consensus runs up to n = 1e12 plus the exact-engine calibration).
leapbench:
	$(GO) run ./cmd/experiments -leapbench -leapbench-out BENCH_leap.json

# CI leap harness: the smoke grid (leap at n = 1e9 plus the n = 1e7
# exact-engine calibration), diffed against the committed baseline on
# machine-portable quantities (convergence, regime traces, deterministic
# tick counts, relative consensus-time error vs exact).
leap-smoke:
	$(GO) run ./cmd/experiments -leapbench -smoke \
		-leapbench-out BENCH_leap_smoke.json -leap-baseline BENCH_leap_baseline.json

# Regenerate the committed leap smoke baseline (run after an intentional
# hybrid-engine change; commit the result).
leap-baseline:
	$(GO) run ./cmd/experiments -leapbench -smoke -leapbench-out BENCH_leap_baseline.json

# Regenerate BENCH_serve.json (the pluralityd service-layer load record:
# distinct-job throughput, the cache probe, queue backpressure — a real
# daemon behind a real listener).
servebench:
	$(GO) run ./cmd/experiments -servebench -servebench-out BENCH_serve.json

# CI serve harness: the smoke load, diffed against the committed baseline
# on machine-portable quantities only (completion accounting, cache hit +
# byte-identical replay, deterministic reference ticks, 429 contract —
# never jobs/sec or latency), plus the curl quickstart script from
# README.md against a live daemon.
serve-smoke:
	$(GO) run ./cmd/experiments -servebench -smoke \
		-servebench-out BENCH_serve_smoke.json -serve-baseline BENCH_serve_baseline.json
	./scripts/serve_quickstart.sh

# Regenerate the committed serve smoke baseline (run after an intentional
# service or engine change; commit the result).
serve-baseline:
	$(GO) run ./cmd/experiments -servebench -smoke -servebench-out BENCH_serve_baseline.json

# CI regression harness: run every named sweep at smoke size, write the
# BENCH_exp.json artifact, run the statistical gates, and diff against the
# committed baseline within tolerance bands.
sweep-smoke:
	$(GO) run ./cmd/experiments -sweep all -smoke -out BENCH_exp.json \
		-baseline BENCH_exp_baseline.json

# Regenerate the committed smoke baseline (run after an intentional change
# to protocol behavior or sweep grids; commit the result).
sweep-baseline:
	$(GO) run ./cmd/experiments -sweep all -smoke -out BENCH_exp_baseline.json

# CI adversary harness: the adversary-threshold sweep at smoke size under
# the race detector (the adversary hooks share engine state with the
# simulation loop, so the threshold run doubles as a race gate), diffed
# against the committed baseline on machine-portable quantities only
# (survival counts, corruption counters, simulated consensus time — never
# wall clock). The sweep's own gates pin the phase transition: survival at
# f = n^0.3, collapse at f = 4*sqrt(n), bit-clean zero-budget controls.
adv-smoke:
	$(GO) run -race ./cmd/experiments -sweep adversary-threshold -smoke \
		-out BENCH_adv.json -baseline BENCH_adv_baseline.json

# Regenerate the committed adversary smoke baseline (run after an
# intentional change to an adversary or a hosting engine; commit the
# result).
adv-baseline:
	$(GO) run ./cmd/experiments -sweep adversary-threshold -smoke \
		-out BENCH_adv_baseline.json

# CI topology harness: the topology-equivalence sweep at smoke size under
# the race detector — the degree-class lumped engine against the per-node
# oracle on annealed topologies (and the CSR fast path on the quenched
# control) — diffed against the committed baseline on machine-portable
# quantities only. The sweep's own gates pin lumping exactness.
topo-smoke:
	$(GO) run -race ./cmd/experiments -sweep topology-equivalence -smoke \
		-out BENCH_topo.json -baseline BENCH_topo_baseline.json

# Regenerate the committed topology smoke baseline (run after an intentional
# change to the lumped engine, the CSR hot path or the sweep grid; commit
# the result).
topo-baseline:
	$(GO) run ./cmd/experiments -sweep topology-equivalence -smoke \
		-out BENCH_topo_baseline.json

# CI node-runtime harness: the net-equivalence sweep at smoke size under
# the race detector (the runtime is goroutines exchanging messages, so the
# oracle gate doubles as a race gate), diffed against the committed
# baseline on machine-portable quantities only (simulated consensus times,
# deterministic message counts — never wall clock), then the README
# two-process TCP cluster quickstart end to end. The sweep's own KS gate
# pins the networked consensus-time distribution to the simulator's.
net-smoke:
	$(GO) run -race ./cmd/experiments -sweep net-equivalence -smoke \
		-out BENCH_net.json -baseline BENCH_net_baseline.json
	./scripts/net_quickstart.sh

# Regenerate the committed node-runtime smoke baseline (run after an
# intentional change to the node runtime, a protocol rule or the sweep
# grid; commit the result).
net-baseline:
	$(GO) run ./cmd/experiments -sweep net-equivalence -smoke \
		-out BENCH_net_baseline.json

# Full-size logn-scaling sweep, the nightly job's workload.
sweep-nightly:
	$(GO) run ./cmd/experiments -sweep logn-scaling -out BENCH_exp_nightly.json

# vet + gofmt always run; staticcheck and govulncheck run when installed
# (CI installs both at pinned versions — see .github/workflows/ci.yml) and
# are skipped with a notice otherwise, so offline dev machines still lint.
lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it pinned)"; \
	fi

fmt:
	gofmt -w .
