# Single source of truth for the commands CI runs; keep .github/workflows/ci.yml
# pointed at these targets so local dev and CI cannot drift.

GO ?= go

.PHONY: build test test-short test-race bench bench-smoke schedbench lint fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race -short ./...

# Full benchmark pass (slow; regenerates local numbers, not committed).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# One iteration of every benchmark — catches benchmarks that no longer
# compile or crash, without paying measurement time.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Regenerate BENCH_sched.json (the scheduler-engine before/after record).
schedbench:
	$(GO) run ./cmd/experiments -schedbench -schedbench-out BENCH_sched.json

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .
